#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "log/command_log.h"
#include "query/expr.h"
#include "txn_coord/txn_coordinator.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace {

std::string TempPath(const std::string& name) {
  // Suites run as separate processes under `ctest -j`; a pid suffix keeps
  // their checkpoint and log directories from colliding.
  static const std::string pid = std::to_string(::getpid());
  return ::testing::TempDir() + "/sstore_coord_" + pid + "_" + name;
}

std::string MakeDir(const std::string& name) {
  std::string path = TempPath(name);
  ::mkdir(path.c_str(), 0755);
  return path;
}

Cluster::Options ClusterOpts(int partitions, CoordinationMode mode,
                             const std::string& log_dir = "") {
  Cluster::Options opts;
  opts.num_partitions = partitions;
  // Modulo routing: contestant c is owned by partition c % N, so tests can
  // pick cross-partition pairs deterministically.
  opts.routing = PartitionMap::Mode::kModulo;
  opts.coordination = mode;
  opts.log_dir = log_dir;
  opts.log_sync = false;  // durability content, not fsync latency, under test
  return opts;
}

VoterClusterConfig SmallConfig() {
  VoterClusterConfig config;
  config.num_contestants = 8;
  config.initial_votes = 100;
  return config;
}

// ---- Atomic commit across partitions ----

TEST(TxnCoordTest, CommitAppliesOnAllPartitions) {
  for (CoordinationMode mode :
       {CoordinationMode::kTwoPhase, CoordinationMode::kGlobalOrder}) {
    Cluster cluster(ClusterOpts(4, mode));
    VoterClusterConfig config = SmallConfig();
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    VoterClusterApp app(&cluster, config);

    // Contestants 0 and 1 live on partitions 0 and 1 (modulo routing).
    ASSERT_NE(app.OwnerOf(0), app.OwnerOf(1));
    std::vector<TxnOutcome> outs = app.Transfer(0, 1, 30);
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_TRUE(outs[0].committed()) << outs[0].status.ToString();
    EXPECT_TRUE(outs[1].committed()) << outs[1].status.ToString();
    cluster.WaitIdle();
    EXPECT_EQ(*app.Count(0), 70);
    EXPECT_EQ(*app.Count(1), 130);
    EXPECT_TRUE(app.CheckInvariant().ok());

    ClusterStats stats = cluster.GatherStats();
    EXPECT_EQ(stats.coord.multi_txns, 1u);
    EXPECT_EQ(stats.coord.commits, 1u);
    EXPECT_EQ(stats.coord.aborts, 0u);
    EXPECT_EQ(stats.coord.prepares, 2u);
    EXPECT_EQ(stats.coord.rounds, 1u);
    cluster.Stop();
  }
}

TEST(TxnCoordTest, AbortOnOneParticipantRollsBackAll) {
  for (CoordinationMode mode :
       {CoordinationMode::kTwoPhase, CoordinationMode::kGlobalOrder}) {
    Cluster cluster(ClusterOpts(4, mode));
    VoterClusterConfig config = SmallConfig();
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    VoterClusterApp app(&cluster, config);

    // The subtract fragment aborts (only 100 votes available); the add
    // fragment on the peer partition prepared successfully and must roll
    // back.
    std::vector<TxnOutcome> outs = app.Transfer(0, 1, 1000);
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_FALSE(outs[0].committed());
    EXPECT_FALSE(outs[1].committed());
    EXPECT_TRUE(outs[0].status.IsAborted()) << outs[0].status.ToString();
    cluster.WaitIdle();
    EXPECT_EQ(*app.Count(0), 100);
    EXPECT_EQ(*app.Count(1), 100);
    EXPECT_TRUE(app.CheckInvariant().ok());

    ClusterStats stats = cluster.GatherStats();
    EXPECT_EQ(stats.coord.aborts, 1u);
    EXPECT_EQ(stats.coord.commits, 0u);
    cluster.Stop();
  }
}

/// A probe procedure that *first mutates* and then aborts on one designated
/// partition — the rollback-visible abort injection of the acceptance
/// criteria. params = (abort_partition); -1 never aborts.
DeploymentPlan ProbePlan() {
  DeploymentPlan plan;
  plan.CreateTable("probe_log", Schema({{"p", ValueType::kBigInt}}))
      .RegisterProcedure(
          "probe", SpKind::kOltp,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            int64_t self = ctx.partition()->partition_id();
            SSTORE_ASSIGN_OR_RETURN(Table * log, ctx.table("probe_log"));
            SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                    ctx.exec().Insert(log,
                                                      {Value::BigInt(self)}));
            (void)rid;
            if (ctx.params()[0].as_int64() == self) {
              return Status::Aborted("injected abort on partition " +
                                     std::to_string(self));
            }
            ctx.EmitOutput({Value::BigInt(self)});
            return Status::OK();
          }));
  return plan;
}

size_t ProbeLogRows(Cluster& cluster, size_t p) {
  return (*cluster.store(p).catalog().GetTable("probe_log"))->row_count();
}

TEST(TxnCoordTest, ExecuteOnAllIsAtomicAndIndexedByPartition) {
  Cluster cluster(ClusterOpts(3, CoordinationMode::kTwoPhase));
  ASSERT_TRUE(cluster.Deploy(ProbePlan()).ok());
  cluster.Start();

  // Commit case: outcomes indexed by partition id, deterministically.
  std::vector<TxnOutcome> outs =
      cluster.ExecuteOnAll("probe", {Value::BigInt(-1)});
  ASSERT_EQ(outs.size(), 3u);
  for (size_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(outs[p].committed()) << outs[p].status.ToString();
    ASSERT_EQ(outs[p].output.size(), 1u);
    EXPECT_EQ(outs[p].output[0][0].as_int64(), static_cast<int64_t>(p));
  }
  cluster.WaitIdle();
  for (size_t p = 0; p < 3; ++p) EXPECT_EQ(ProbeLogRows(cluster, p), 1u);

  // Abort injected on partition 1 *after* its insert: every partition —
  // including the two that voted commit — must roll back to one row.
  outs = cluster.ExecuteOnAll("probe", {Value::BigInt(1)});
  ASSERT_EQ(outs.size(), 3u);
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_FALSE(outs[p].committed()) << "partition " << p;
  }
  EXPECT_TRUE(outs[1].status.IsAborted());
  cluster.WaitIdle();
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(ProbeLogRows(cluster, p), 1u) << "partition " << p;
  }
  cluster.Stop();
}

TEST(TxnCoordTest, InlineModeWorksBeforeStart) {
  Cluster cluster(ClusterOpts(2, CoordinationMode::kTwoPhase));
  ASSERT_TRUE(cluster.Deploy(ProbePlan()).ok());
  // No Start(): the coordinator runs the sequential inline protocol.
  std::vector<TxnOutcome> outs =
      cluster.ExecuteOnAll("probe", {Value::BigInt(-1)});
  ASSERT_EQ(outs.size(), 2u);
  for (const TxnOutcome& out : outs) EXPECT_TRUE(out.committed());
  outs = cluster.ExecuteOnAll("probe", {Value::BigInt(0)});
  for (const TxnOutcome& out : outs) EXPECT_FALSE(out.committed());
  EXPECT_EQ(ProbeLogRows(cluster, 0), 1u);
  EXPECT_EQ(ProbeLogRows(cluster, 1), 1u);
}

TEST(TxnCoordTest, MultipleFragmentsOnOneParticipant) {
  Cluster cluster(ClusterOpts(4, CoordinationMode::kTwoPhase));
  VoterClusterConfig config = SmallConfig();
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();
  VoterClusterApp app(&cluster, config);
  // Contestants 0 and 4 share partition 0; 1 lives on partition 1. Three
  // ops, two participants, one atomic decision.
  std::vector<std::pair<Value, Tuple>> ops;
  ops.emplace_back(Value::BigInt(0),
                   Tuple{Value::BigInt(0), Value::BigInt(-10)});
  ops.emplace_back(Value::BigInt(4),
                   Tuple{Value::BigInt(4), Value::BigInt(-10)});
  ops.emplace_back(Value::BigInt(1), Tuple{Value::BigInt(1), Value::BigInt(20)});
  std::vector<TxnOutcome> outs = cluster.ExecuteMulti("vc_adjust", std::move(ops));
  ASSERT_EQ(outs.size(), 3u);
  for (const TxnOutcome& out : outs) EXPECT_TRUE(out.committed());
  cluster.WaitIdle();
  EXPECT_EQ(*app.Count(0), 90);
  EXPECT_EQ(*app.Count(4), 90);
  EXPECT_EQ(*app.Count(1), 120);
  EXPECT_TRUE(app.CheckInvariant().ok());
  cluster.Stop();
}

// ---- Deterministic global order ----

TEST(TxnCoordTest, DeterministicOrderMatchesTwoPhaseResults) {
  VoterClusterConfig config = SmallConfig();
  auto run = [&config](CoordinationMode mode) {
    Cluster cluster(ClusterOpts(4, mode));
    EXPECT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    VoterClusterApp app(&cluster, config);
    for (int i = 0; i < 40; ++i) app.Vote(i % config.num_contestants);
    // Mix of committing and aborting transfers, same sequence both modes.
    app.Transfer(0, 1, 25);
    app.Transfer(1, 2, 60);
    app.Transfer(2, 3, 10000);  // aborts: insufficient votes
    app.Transfer(3, 0, 5);
    app.Transfer(5, 6, 101);
    cluster.WaitIdle();
    std::vector<int64_t> counts;
    for (int64_t c = 0; c < config.num_contestants; ++c) {
      counts.push_back(*app.Count(c));
    }
    EXPECT_TRUE(app.CheckInvariant().ok());
    cluster.Stop();
    return counts;
  };
  EXPECT_EQ(run(CoordinationMode::kTwoPhase),
            run(CoordinationMode::kGlobalOrder));
}

TEST(TxnCoordTest, GlobalOrderConcurrentTransfersKeepInvariant) {
  Cluster cluster(ClusterOpts(4, CoordinationMode::kGlobalOrder));
  VoterClusterConfig config = SmallConfig();
  config.initial_votes = 10000;
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();
  VoterClusterApp app(&cluster, config);

  // Overlapping participant sets from many threads: the classic 2PC
  // deadlock shape, which the sequencer's global order must neutralize.
  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTransfersPerThread; ++i) {
        int64_t from = (t + i) % config.num_contestants;
        int64_t to = (t + i + 1 + t % 3) % config.num_contestants;
        if (from == to) continue;
        std::vector<TxnOutcome> outs = app.Transfer(from, to, 1 + i % 7);
        if (outs[0].committed()) committed.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  cluster.WaitIdle();
  EXPECT_GT(committed.load(), 0);
  EXPECT_TRUE(app.CheckInvariant().ok());
  EXPECT_EQ(*app.TotalVotes(),
            config.num_contestants * config.initial_votes);
  cluster.Stop();
}

// ---- Coordinated checkpoint ----

TEST(TxnCoordTest, CheckpointBarrierVsConcurrentBatchSubmission) {
  std::string ckpt_dir = MakeDir("ckpt_concurrent");
  VoterClusterConfig config = SmallConfig();
  config.initial_votes = 10000;

  Cluster cluster(ClusterOpts(4, CoordinationMode::kGlobalOrder));
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();
  VoterClusterApp app(&cluster, config);

  std::atomic<bool> stop{false};
  // Batch voters: one batch of vc_vote invocations per owner partition per
  // round, racing the checkpoint barrier.
  std::thread batcher([&] {
    while (!stop.load()) {
      for (size_t p = 0; p < cluster.num_partitions(); ++p) {
        std::vector<Invocation> batch;
        for (int64_t c = 0; c < config.num_contestants; ++c) {
          if (app.OwnerOf(c) == p) {
            batch.push_back(Invocation{"vc_vote", {Value::BigInt(c)}, 0});
          }
        }
        cluster.SubmitBatchToPartition(p, std::move(batch))->Wait();
      }
    }
  });
  std::thread transferrer([&] {
    int i = 0;
    while (!stop.load()) {
      app.Transfer(i % 8, (i + 1) % 8, 1);
      ++i;
    }
  });

  // Checkpoints taken mid-storm; each must be a consistent cut.
  Status first = cluster.Checkpoint(ckpt_dir);
  ASSERT_TRUE(first.ok()) << first.ToString();
  Status second = cluster.Checkpoint(ckpt_dir);
  ASSERT_TRUE(second.ok()) << second.ToString();
  stop.store(true);
  batcher.join();
  transferrer.join();
  cluster.WaitIdle();
  cluster.Stop();

  // Restore the cut alone (no logs): the invariant ties the vote counters
  // to the contestant counts, so a cut through half a vote or half a
  // transfer would show up as a mismatch.
  Cluster recovered(ClusterOpts(4, CoordinationMode::kGlobalOrder));
  ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
  Status st = recovered.Recover(ckpt_dir, "");
  ASSERT_TRUE(st.ok()) << st.ToString();
  VoterClusterApp recovered_app(&recovered, config);
  EXPECT_TRUE(recovered_app.CheckInvariant().ok());
}

// ---- Crash recovery ----

TEST(TxnCoordTest, KillAndRecoverRestoresConsistentCut) {
  std::string ckpt_dir = MakeDir("ckpt_kill");
  std::string log_dir = MakeDir("logs_kill");
  VoterClusterConfig config = SmallConfig();

  std::vector<int64_t> live_counts;
  int64_t live_vote_txns = 0;
  {
    Cluster cluster(ClusterOpts(4, CoordinationMode::kTwoPhase, log_dir));
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    VoterClusterApp app(&cluster, config);

    for (int i = 0; i < 20; ++i) app.Vote(i % config.num_contestants);
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    // Post-checkpoint tail: replay must reconstruct exactly this.
    for (int i = 0; i < 15; ++i) app.Vote((i * 3) % config.num_contestants);
    app.Transfer(0, 1, 40);
    app.Transfer(2, 3, 11);
    app.Transfer(4, 5, 100000);  // aborts; must not resurrect on replay
    app.Transfer(6, 7, 7);
    cluster.WaitIdle();

    for (int64_t c = 0; c < config.num_contestants; ++c) {
      live_counts.push_back(*app.Count(c));
    }
    live_vote_txns = *app.TotalVoteTxns();
    ASSERT_TRUE(app.CheckInvariant().ok());
    cluster.Stop();
    // "Crash": the cluster object dies; only checkpoint + logs survive.
  }

  // Recovery cluster: same plan, no log_dir (attaching logs would truncate
  // the very files being replayed).
  Cluster recovered(ClusterOpts(4, CoordinationMode::kTwoPhase));
  ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  VoterClusterApp app(&recovered, config);
  for (int64_t c = 0; c < config.num_contestants; ++c) {
    EXPECT_EQ(*app.Count(c), live_counts[c]) << "contestant " << c;
  }
  EXPECT_EQ(*app.TotalVoteTxns(), live_vote_txns);
  EXPECT_TRUE(app.CheckInvariant().ok());
  // Every multi-partition transaction was decided before the "crash".
  ClusterStats stats = recovered.GatherStats();
  EXPECT_EQ(stats.coord.in_doubt_committed, 0u);
  EXPECT_EQ(stats.coord.in_doubt_aborted, 0u);

  // A post-recovery checkpoint must advance past the recovered id (to 2)
  // instead of clobbering checkpoint 1's snapshot files in place; a second
  // recovery from the new manifest sees the same state.
  ASSERT_TRUE(recovered.Checkpoint(ckpt_dir).ok());
  Cluster third(ClusterOpts(4, CoordinationMode::kTwoPhase));
  ASSERT_TRUE(third.Deploy(BuildVoterClusterDeployment(config)).ok());
  ASSERT_TRUE(third.Recover(ckpt_dir, "").ok());
  VoterClusterApp third_app(&third, config);
  for (int64_t c = 0; c < config.num_contestants; ++c) {
    EXPECT_EQ(*third_app.Count(c), live_counts[c]) << "contestant " << c;
  }
}

TEST(TxnCoordTest, InDoubtTxnResolvedFromCoordinatorDecisionLog) {
  VoterClusterConfig config = SmallConfig();
  // Each crash scenario needs its own cut: Recover() commits a fresh
  // checkpoint into the directory it recovered from (composable recovery),
  // so a cut cannot be recovered twice with different crash artifacts.
  std::string ckpt_commit = MakeDir("ckpt_indoubt_commit");
  std::string ckpt_abort = MakeDir("ckpt_indoubt_abort");
  auto write_cut = [&](const std::string& dir) {
    // Stopped-cluster checkpoint: snapshots + manifest for checkpoint id 1.
    Cluster cluster(ClusterOpts(4, CoordinationMode::kTwoPhase));
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    ASSERT_TRUE(cluster.Checkpoint(dir).ok());
  };
  write_cut(ckpt_commit);
  write_cut(ckpt_abort);

  // Handcraft the crash artifacts: partition logs whose tail is a kPrepare
  // with no decision mark (the participant died between vote and apply).
  auto craft_logs = [&](const std::string& log_dir, bool decided_commit) {
    size_t owner = 2 % 4;  // contestant 2's partition under modulo routing
    for (size_t p = 0; p < 4; ++p) {
      CommandLog::Options opts;
      opts.path = log_dir + "/partition-" + std::to_string(p) + ".log";
      opts.sync = false;
      auto log = std::move(CommandLog::Open(opts)).value();
      LogRecord mark;
      mark.record_type = static_cast<uint8_t>(LogRecordType::kCheckpointMark);
      mark.global_txn_id = 1;
      ASSERT_TRUE(log->Append(mark).ok());
      if (p == owner) {
        LogRecord prepare;
        prepare.txn_id = 1;
        prepare.proc = "vc_adjust";
        prepare.params = {Value::BigInt(2), Value::BigInt(5)};
        prepare.record_type = static_cast<uint8_t>(LogRecordType::kPrepare);
        prepare.global_txn_id = 7;
        ASSERT_TRUE(log->Append(prepare).ok());
      }
      ASSERT_TRUE(log->Close().ok());
    }
    if (decided_commit) {
      CommandLog::Options opts;
      opts.path = log_dir + "/coord-decisions.log";
      opts.sync = false;
      auto log = std::move(CommandLog::Open(opts)).value();
      LogRecord decision;
      decision.record_type = static_cast<uint8_t>(LogRecordType::kCommitMark);
      decision.global_txn_id = 7;
      ASSERT_TRUE(log->Append(decision).ok());
      ASSERT_TRUE(log->Close().ok());
    }
  };

  {
    // The coordinator had made the commit decision durable: the in-doubt
    // fragment must re-execute.
    std::string log_dir = MakeDir("logs_indoubt_commit");
    craft_logs(log_dir, /*decided_commit=*/true);
    Cluster recovered(ClusterOpts(4, CoordinationMode::kTwoPhase));
    ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
    Status st = recovered.Recover(ckpt_commit, log_dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    VoterClusterApp app(&recovered, config);
    EXPECT_EQ(*app.Count(2), config.initial_votes + 5);
    ClusterStats stats = recovered.GatherStats();
    EXPECT_EQ(stats.coord.in_doubt_committed, 1u);
    EXPECT_EQ(stats.coord.in_doubt_aborted, 0u);
  }
  {
    // No durable decision: presumed abort.
    std::string log_dir = MakeDir("logs_indoubt_abort");
    craft_logs(log_dir, /*decided_commit=*/false);
    Cluster recovered(ClusterOpts(4, CoordinationMode::kTwoPhase));
    ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
    Status st = recovered.Recover(ckpt_abort, log_dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    VoterClusterApp app(&recovered, config);
    EXPECT_EQ(*app.Count(2), config.initial_votes);
    ClusterStats stats = recovered.GatherStats();
    EXPECT_EQ(stats.coord.in_doubt_committed, 0u);
    EXPECT_EQ(stats.coord.in_doubt_aborted, 1u);
  }
}

// ---- Stats ----

TEST(TxnCoordTest, CoordStatsSurfacedAndReset) {
  Cluster cluster(ClusterOpts(4, CoordinationMode::kTwoPhase));
  VoterClusterConfig config = SmallConfig();
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();
  VoterClusterApp app(&cluster, config);
  app.Transfer(0, 1, 10);
  app.Transfer(1, 2, 10000);  // aborts
  cluster.WaitIdle();

  ClusterStats stats = cluster.GatherStats();
  EXPECT_EQ(stats.coord.multi_txns, 2u);
  EXPECT_EQ(stats.coord.commits, 1u);
  EXPECT_EQ(stats.coord.aborts, 1u);
  EXPECT_EQ(stats.coord.prepares, 4u);
  EXPECT_EQ(stats.coord.rounds, 2u);
  EXPECT_GE(stats.coord.avg_round_latency_us(), 0.0);

  cluster.ResetStats();
  ClusterStats after = cluster.GatherStats();
  EXPECT_EQ(after.coord.multi_txns, 0u);
  EXPECT_EQ(after.coord.rounds, 0u);
  EXPECT_EQ(after.coord.round_latency_us_total, 0u);
  cluster.Stop();
}

}  // namespace
}  // namespace sstore
