// Seeded randomized chaos harness (ISSUE 10): one seed deterministically
// derives a whole schedule — the workload mix (wire clients over a voter
// cluster with an optional background checkpointer and concurrent rebalance,
// or a placed channel topology), the subset of failpoint sites to arm, and
// each site's skip/count trigger. RunSchedule drives N generations of
// run -> simulated crash -> Recover -> invariant checks. On failure the test
// prints the seed and the exact SSTORE_FAILPOINTS-style spec, so
// SSTORE_CHAOS_SEED=<s> replays the identical schedule.
//
// Invariants checked after every recovery:
//  - vote conservation (VoterClusterApp::CheckInvariant),
//  - client-observed commits are a subset of durable state
//    (TotalVoteTxns >= acked: an ack can be lost after commit, never the
//    reverse),
//  - channel exactly-once: every committed ingest key appears in the sink
//    exactly once, no matter how forwards were dropped, duplicated, stalled,
//    or crashed between delivery and GC.

#ifndef SSTORE_TESTS_CHAOS_HARNESS_H_
#define SSTORE_TESTS_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "common/status.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace chaos {

/// The voter deployment plus an unseeded keyed table "chaos_kv" (key column
/// 0) fed by a border procedure "chaos_put". Rebalance scenarios migrate
/// chaos_kv: vc_contestants is replicated by design (every partition seeds
/// every row, so a migration insert would collide with the target's unique
/// pk), while chaos_kv rows live only on their owning partition.
DeploymentPlan ChaosVoterDeployment(const VoterClusterConfig& config);

/// One armed failpoint in a schedule.
struct FaultPick {
  std::string site;
  std::string action;  // "error" | "torn" | "crash"
  int skip = 0;
  int count = 1;  // -1 = every hit
};

/// A fully materialized schedule. Every field is a pure function of `seed`.
struct Schedule {
  uint64_t seed = 0;
  bool wire_flavor = true;  // false: placed channel topology instead
  int clients = 1;          // wire flavor: concurrent pipelined clients
  int requests_per_client = 24;
  int generations = 2;  // crash -> Recover cycles before the final verify
  bool with_checkpointer = false;
  bool with_rebalance = false;  // wire flavor only: concurrent split
  std::vector<FaultPick> picks;

  /// The picks in SSTORE_FAILPOINTS syntax ("site=action@skipxcount;...").
  std::string Spec() const;
  /// One-line human summary for failure messages.
  std::string Describe() const;
};

/// Derives the schedule for `seed`. Same seed, same schedule, byte for byte.
Schedule MakeSchedule(uint64_t seed);

/// Runs the schedule end to end. `dir_tag` namespaces the temp directories
/// so concurrent schedules don't collide. OK when every invariant held;
/// otherwise the message names the broken invariant (caller prints seed +
/// spec for replay).
Status RunSchedule(const Schedule& schedule, const std::string& dir_tag);

/// CI plumbing. SSTORE_CHAOS_SEED replays exactly one seed;
/// SSTORE_CHAOS_BASE_SEED and SSTORE_CHAOS_SCHEDULES configure the sweep.
bool EnvSeed(uint64_t* seed);
uint64_t EnvBaseSeed(uint64_t fallback);
int EnvScheduleCount(int fallback);

}  // namespace chaos
}  // namespace sstore

#endif  // SSTORE_TESTS_CHAOS_HARNESS_H_
