#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "streaming/sstore.h"
#include "workloads/linear_road.h"
#include "workloads/microbench.h"
#include "workloads/voter.h"

namespace sstore {
namespace {

// ---- Micro-benchmark builders ----

class EeChainTest : public ::testing::TestWithParam<int> {};

TEST_P(EeChainTest, SStoreChainDeliversToSink) {
  int stages = GetParam();
  SStore store;
  ASSERT_TRUE(EeTriggerChain::SetupSStore(&store, stages).ok());
  StreamInjector injector(&store.partition(), "ingest_s");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(injector.InjectSync({Value::BigInt(i)}).committed());
  }
  EXPECT_EQ((*store.catalog().GetTable("sink"))->row_count(), 5u);
  // All intermediate streams garbage-collected.
  for (int i = 0; i < stages; ++i) {
    EXPECT_EQ((*store.catalog().GetTable("s" + std::to_string(i)))->row_count(),
              0u);
  }
  EXPECT_EQ(store.ee().stats().boundary_crossings, 0u);
}

TEST_P(EeChainTest, HStoreChainDeliversToSinkWithCrossings) {
  int stages = GetParam();
  SStore store;
  ASSERT_TRUE(EeTriggerChain::SetupHStore(&store, stages).ok());
  StreamInjector injector(&store.partition(), "ingest_h");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(injector.InjectSync({Value::BigInt(i)}).committed());
  }
  EXPECT_EQ((*store.catalog().GetTable("sink"))->row_count(), 5u);
  for (int i = 0; i < stages; ++i) {
    EXPECT_EQ((*store.catalog().GetTable("hs" + std::to_string(i)))->row_count(),
              0u);
  }
  // Entry + one per stage, per transaction.
  EXPECT_EQ(store.ee().stats().boundary_crossings,
            5u * (static_cast<size_t>(stages) + 1));
}

INSTANTIATE_TEST_SUITE_P(StageSweep, EeChainTest, ::testing::Values(1, 2, 5, 10));

class PeChainTest : public ::testing::TestWithParam<int> {};

TEST_P(PeChainTest, SStoreWorkflowCompletes) {
  int procs = GetParam();
  SStore store;
  ASSERT_TRUE(PeTriggerChain::SetupSStore(&store, procs).ok());
  StreamInjector injector(&store.partition(), PeTriggerChain::ProcName(1));
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(injector.InjectSync({Value::BigInt(i)}).committed());
  }
  EXPECT_EQ((*store.catalog().GetTable("done"))->row_count(), 7u);
  if (procs > 1) {
    EXPECT_EQ(store.triggers().pe_trigger_firings(),
              7u * (static_cast<size_t>(procs) - 1));
  }
}

TEST_P(PeChainTest, HStoreClientDrivenChainCompletes) {
  int procs = GetParam();
  SStore store;
  ASSERT_TRUE(PeTriggerChain::SetupHStore(&store, procs).ok());
  for (int i = 1; i <= 7; ++i) {
    ASSERT_TRUE(
        PeTriggerChain::RunChainHStore(&store, procs, i, {Value::BigInt(i)}).ok());
  }
  EXPECT_EQ((*store.catalog().GetTable("done"))->row_count(), 7u);
  // No PE triggers fired: the client drove everything.
  EXPECT_EQ(store.triggers().pe_trigger_firings(), 0u);
  // Explicit deletes cleaned the intermediate streams.
  for (int i = 0; i + 1 < procs; ++i) {
    EXPECT_EQ((*store.catalog().GetTable("q" + std::to_string(i)))->row_count(),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ProcSweep, PeChainTest, ::testing::Values(1, 2, 5, 10));

struct WindowCase {
  int64_t size;
  int64_t slide;
};

class WindowEquivalenceTest : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowEquivalenceTest, NativeAndManualWindowsAgree) {
  // Property: after any number of inserts, the native window and the
  // manual H-Store window hold exactly the same active tuples.
  WindowCase wc = GetParam();
  SStore native_store, manual_store;
  ASSERT_TRUE(WindowBench::SetupNative(&native_store, wc.size, wc.slide).ok());
  ASSERT_TRUE(WindowBench::SetupManual(&manual_store, wc.size, wc.slide).ok());
  StreamInjector native_in(&native_store.partition(), "win_native");
  StreamInjector manual_in(&manual_store.partition(), "win_manual");

  for (int i = 1; i <= 3 * wc.size + 1; ++i) {
    ASSERT_TRUE(native_in.InjectSync({Value::BigInt(i)}).committed());
    ASSERT_TRUE(manual_in.InjectSync({Value::BigInt(i)}).committed());
    ASSERT_EQ(*WindowBench::ActiveCount(&native_store, true),
              *WindowBench::ActiveCount(&manual_store, false))
        << "diverged after " << i << " inserts";
  }
  // Compare contents, not just counts.
  std::multiset<int64_t> native_active, manual_active;
  (*native_store.catalog().GetTable("w_bench"))
      ->ForEach([&](RowId, const Tuple& row, const RowMeta&) {
        native_active.insert(row[0].as_int64());
        return true;
      });
  (*manual_store.catalog().GetTable("w_manual"))
      ->ForEach([&](RowId, const Tuple& row, const RowMeta& meta) {
        (void)meta;
        if (row[2].as_int64() == 0) manual_active.insert(row[0].as_int64());
        return true;
      });
  // The manual table keeps staged rows visible to raw ForEach (flag 1);
  // filter applied above. Staged rows excluded on the native side already.
  EXPECT_EQ(native_active, manual_active);
}

INSTANTIATE_TEST_SUITE_P(SizeSlideGrid, WindowEquivalenceTest,
                         ::testing::Values(WindowCase{4, 1}, WindowCase{4, 2},
                                           WindowCase{4, 4}, WindowCase{10, 3},
                                           WindowCase{16, 8}, WindowCase{25, 5}));

// ---- Voter ----

TEST(VoteGeneratorTest, DeterministicAndMostlyValid) {
  VoterConfig config;
  VoteGenerator a(config, 99), b(config, 99);
  std::set<int64_t> phones;
  for (int i = 0; i < 1000; ++i) {
    Tuple va = a.Next(), vb = b.Next();
    EXPECT_EQ(va, vb);
    phones.insert(va[0].as_int64());
  }
  // Mostly unique phones (a small invalid fraction repeats them).
  EXPECT_GT(phones.size(), 950u);
}

class VoterModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(VoterModeTest, VotesAreValidatedCountedAndRanked) {
  bool sstore_mode = GetParam();
  SStore store;
  VoterConfig config;
  config.sstore_mode = sstore_mode;
  config.num_contestants = 4;
  config.delete_every = 10'000;  // no deletions in this test
  VoterApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());

  VoteGenerator gen(config, 5, /*invalid_fraction=*/0.0);
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    Tuple vote = gen.Next();
    if (sstore_mode) {
      if (app.InjectVoteSync(vote).committed()) ++accepted;
    } else {
      if (app.ProcessVoteHStore(vote).ok()) ++accepted;
    }
  }
  EXPECT_EQ(accepted, 300);
  EXPECT_EQ(*app.TotalValidVotes(), 300);
  EXPECT_EQ(*app.ActiveContestants(), 4);

  // Vote counts sum to the total; the top board is sorted descending.
  int64_t sum = 0;
  for (int64_t c = 0; c < 4; ++c) sum += *app.VoteCount(c);
  EXPECT_EQ(sum, 300);
  std::vector<Tuple> top = *app.Leaderboard("top");
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0][1].as_int64(), top[1][1].as_int64());
  EXPECT_GE(top[1][1].as_int64(), top[2][1].as_int64());
  // Skewed generator: the heaviest contestant (id 3) should lead.
  EXPECT_EQ(top[0][0], Value::BigInt(3));
  std::vector<Tuple> trending = *app.Leaderboard("trending");
  ASSERT_FALSE(trending.empty());
  int64_t trending_total = 0;
  for (const Tuple& row : trending) trending_total += row[1].as_int64();
  EXPECT_LE(trending_total, config.trending_window_size);
}

TEST_P(VoterModeTest, DuplicatePhoneRejected) {
  bool sstore_mode = GetParam();
  SStore store;
  VoterConfig config;
  config.sstore_mode = sstore_mode;
  VoterApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());
  Tuple vote = {Value::BigInt(555), Value::BigInt(0), Value::Timestamp(1)};
  if (sstore_mode) {
    ASSERT_TRUE(app.InjectVoteSync(vote).committed());
    TxnOutcome dup = app.InjectVoteSync(vote);
    EXPECT_TRUE(dup.status.IsConstraintViolation());
  } else {
    ASSERT_TRUE(app.ProcessVoteHStore(vote).ok());
    EXPECT_TRUE(app.ProcessVoteHStore(vote).IsConstraintViolation());
  }
  EXPECT_EQ(*app.TotalValidVotes(), 1);
}

TEST_P(VoterModeTest, UnknownContestantRejected) {
  bool sstore_mode = GetParam();
  SStore store;
  VoterConfig config;
  config.sstore_mode = sstore_mode;
  VoterApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());
  Tuple vote = {Value::BigInt(1), Value::BigInt(999), Value::Timestamp(1)};
  Status st = sstore_mode ? app.InjectVoteSync(vote).status
                          : app.ProcessVoteHStore(vote);
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(*app.TotalValidVotes(), 0);
}

TEST_P(VoterModeTest, LowestContestantRemovedEveryN) {
  bool sstore_mode = GetParam();
  SStore store;
  VoterConfig config;
  config.sstore_mode = sstore_mode;
  config.num_contestants = 3;
  config.delete_every = 50;
  VoterApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());
  VoteGenerator gen(config, 31, 0.0);
  for (int i = 0; i < 120; ++i) {
    Tuple vote = gen.Next();
    if (sstore_mode) {
      app.InjectVoteSync(vote);
    } else {
      app.ProcessVoteHStore(vote).ok();
    }
  }
  // Two removal rounds happened (at 50 and 100 valid votes).
  EXPECT_EQ(*app.ActiveContestants(), 1);
  // Removed contestants' votes were returned: recorded votes all belong to
  // still-active contestants.
  Table* votes = *store.catalog().GetTable("votes");
  Table* contestants = *store.catalog().GetTable("contestants");
  votes->ForEach([&](RowId, const Tuple& vote, const RowMeta&) {
    Executor exec;
    std::vector<Tuple> c = *exec.IndexScan(contestants, "pk", {vote[1]});
    EXPECT_EQ(c[0][2], Value::BigInt(1));
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(BothModes, VoterModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "SStore" : "HStore";
                         });

TEST(VoterEquivalenceTest, SStoreAndHStoreModesAgreeOnState) {
  // The same vote sequence produces identical contestant totals in both
  // execution models (the paper's correctness premise for Figure 8).
  VoterConfig config;
  config.num_contestants = 5;
  config.delete_every = 40;
  VoteGenerator gen_a(config, 17, 0.01), gen_b(config, 17, 0.01);

  SStore s_store;
  config.sstore_mode = true;
  VoterApp s_app(&s_store, config);
  ASSERT_TRUE(s_app.Setup().ok());

  SStore h_store;
  config.sstore_mode = false;
  VoterApp h_app(&h_store, config);
  ASSERT_TRUE(h_app.Setup().ok());

  for (int i = 0; i < 200; ++i) {
    s_app.InjectVoteSync(gen_a.Next());
    h_app.ProcessVoteHStore(gen_b.Next()).ok();
  }
  EXPECT_EQ(*s_app.TotalValidVotes(), *h_app.TotalValidVotes());
  EXPECT_EQ(*s_app.ActiveContestants(), *h_app.ActiveContestants());
  for (int64_t c = 0; c < config.num_contestants; ++c) {
    EXPECT_EQ(*s_app.VoteCount(c), *h_app.VoteCount(c)) << "contestant " << c;
  }
}

// ---- Linear Road ----

TEST(LinearRoadGeneratorTest, EveryVehicleReportsEachSecond) {
  LinearRoadConfig config;
  config.num_xways = 2;
  config.vehicles_per_xway = 10;
  LinearRoadGenerator gen(config);
  for (int s = 0; s < 5; ++s) {
    std::vector<PositionReport> reports = gen.NextSecond();
    ASSERT_EQ(reports.size(), 20u);
    for (const PositionReport& r : reports) {
      EXPECT_EQ(r.time_sec, s);
      EXPECT_LT(r.xway, 2);
      EXPECT_GE(r.seg, 0);
      EXPECT_LT(r.seg, config.num_segments);
    }
  }
}

TEST(LinearRoadAppTest, ProcessesTrafficAndRollsUpMinutes) {
  SStore store;
  LinearRoadConfig config;
  config.num_xways = 1;
  config.vehicles_per_xway = 20;
  config.duration_sec = 130;  // two minute boundaries
  config.stop_probability = 0.01;
  LinearRoadApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());

  store.Start();
  LinearRoadGenerator gen(config);
  size_t injected = 0;
  for (int s = 0; s < config.duration_sec; ++s) {
    for (const PositionReport& r : gen.NextSecond()) {
      TicketPtr t = app.InjectAsync(r);
      ASSERT_TRUE(t->Wait().committed());
      ++injected;
    }
  }
  while (store.partition().QueueDepth() > 0) {
    std::this_thread::yield();
  }
  store.Stop();
  EXPECT_EQ(injected, 20u * 130u);
  // Vehicles table has one row per vehicle.
  EXPECT_EQ((*store.catalog().GetTable("lr_vehicles"))->row_count(), 20u);
  // Minute rollups archived per-segment stats (at least two minutes' worth).
  EXPECT_GT(*app.ArchivedStats(), 0u);
  // Crossing notifications were produced.
  EXPECT_GT(*app.DrainNotifications(), 0u);
  // Tolls only accrue after the first rollup; with 20 vehicles over 100
  // segments congestion is low, so tolls may be zero — just assert sanity.
  EXPECT_GE(*app.TotalTollsCharged(), 0.0);
}

TEST(LinearRoadAppTest, SegmentCrossingChargesLatestMinuteToll) {
  SStore store;
  LinearRoadConfig config;
  config.num_xways = 1;
  LinearRoadApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());

  // Archived stats for segment 0: congestion peaked at minute 1 (toll 8.0)
  // but had eased by minute 2 (toll 2.0). A crossing must charge the
  // *latest* minute's toll, not the historic maximum.
  Table* segstats = *store.catalog().GetTable("lr_segstats");
  ASSERT_TRUE(segstats
                  ->Insert({Value::BigInt(0), Value::BigInt(0),
                            Value::BigInt(1), Value::BigInt(7),
                            Value::Double(8.0)})
                  .ok());
  ASSERT_TRUE(segstats
                  ->Insert({Value::BigInt(0), Value::BigInt(0),
                            Value::BigInt(2), Value::BigInt(5),
                            Value::Double(2.0)})
                  .ok());

  auto report = [](int64_t ts, int64_t seg) {
    PositionReport r;
    r.time_sec = ts;
    r.vid = 1;
    r.xway = 0;
    r.lane = 0;
    r.seg = seg;
    r.speed = 30;
    return r;
  };
  // First report registers the vehicle in segment 0; the second crosses
  // into segment 1, charging segment 0's toll.
  store.Start();
  ASSERT_TRUE(app.InjectAsync(report(0, 0))->Wait().committed());
  ASSERT_TRUE(app.InjectAsync(report(1, 1))->Wait().committed());
  while (store.partition().QueueDepth() > 0) {
    std::this_thread::yield();
  }
  store.Stop();
  EXPECT_DOUBLE_EQ(*app.TotalTollsCharged(), 2.0);
}

TEST(LinearRoadAppTest, StoppedVehiclesCreateAndClearAccidents) {
  SStore store;
  LinearRoadConfig config;
  config.num_xways = 1;
  config.vehicles_per_xway = 2;
  config.stop_duration_sec = 5;
  LinearRoadApp app(&store, config);
  ASSERT_TRUE(app.Setup().ok());

  store.Start();
  // Two vehicles stopped in the same segment -> accident.
  PositionReport a{10, 1, 0, 0, 7, 0};
  PositionReport b{10, 2, 0, 1, 7, 0};
  ASSERT_TRUE(app.InjectAsync(a)->Wait().committed());
  ASSERT_TRUE(app.InjectAsync(b)->Wait().committed());
  EXPECT_EQ(*app.OpenAccidents(), 1u);

  // A third report in a following minute clears the stale accident via SP2.
  PositionReport c{70, 1, 0, 0, 8, 20};
  ASSERT_TRUE(app.InjectAsync(c)->Wait().committed());
  while (store.partition().QueueDepth() > 0) {
    std::this_thread::yield();
  }
  store.Stop();
  EXPECT_EQ(*app.OpenAccidents(), 0u);
}

}  // namespace
}  // namespace sstore
