#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>

#include "query/expr.h"
#include "streaming/injector.h"
#include "streaming/sstore.h"

namespace sstore {
namespace {

Schema NumSchema() { return Schema({{"x", ValueType::kBigInt}}); }
Tuple Num(int64_t x) { return {Value::BigInt(x)}; }

std::string TempPath(const std::string& name) {
  // Parameterized tests (Strong/Weak) reuse the same logical names but run
  // as separate processes under `ctest -j`; a pid suffix keeps their log and
  // snapshot files from colliding.
  static const std::string pid = std::to_string(::getpid());
  return ::testing::TempDir() + "/sstore_" + pid + "_" + name;
}

/// Deterministic 2-stage chain used for recovery equivalence: border "ingest"
/// emits to s1; interior "apply" adds each value into running_sum (a public
/// table with one row) and appends to table "applied".
class RecoverableApp {
 public:
  explicit RecoverableApp(SStore* store) : store_(store) {
    Setup();
  }

  void Setup() {
    EXPECT_TRUE(store_->streams().DefineStream("s1", NumSchema()).ok());
    EXPECT_TRUE(store_->catalog().CreateTable("running_sum", NumSchema()).ok());
    EXPECT_TRUE(store_->catalog().CreateTable("applied", NumSchema()).ok());
    Table* sum = *store_->catalog().GetTable("running_sum");
    EXPECT_TRUE(sum->Insert(Num(0)).ok());

    auto ingest = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
      return ctx.EmitToStream("s1", {ctx.params()});
    });
    SStore* store = store_;
    auto apply = std::make_shared<LambdaProcedure>([store](ProcContext& ctx) {
      SSTORE_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          store->streams().BatchContents("s1", ctx.batch_id()));
      SSTORE_ASSIGN_OR_RETURN(Table * sum, ctx.table("running_sum"));
      SSTORE_ASSIGN_OR_RETURN(Table * applied, ctx.table("applied"));
      for (const Tuple& row : rows) {
        SSTORE_ASSIGN_OR_RETURN(
            size_t n, ctx.exec().Update(sum, nullptr,
                                        {{0, Add(Col(0), Lit(row[0]))}}));
        (void)n;
        SSTORE_ASSIGN_OR_RETURN(RowId rid, ctx.exec().Insert(applied, row));
        (void)rid;
      }
      return Status::OK();
    });
    EXPECT_TRUE(
        store_->partition().RegisterProcedure("ingest", SpKind::kBorder, ingest).ok());
    EXPECT_TRUE(
        store_->partition().RegisterProcedure("apply", SpKind::kInterior, apply).ok());

    Workflow wf("recoverable");
    WorkflowNode n1, n2;
    n1.proc = "ingest";
    n1.kind = SpKind::kBorder;
    n1.output_streams = {"s1"};
    n2.proc = "apply";
    n2.kind = SpKind::kInterior;
    n2.input_streams = {"s1"};
    EXPECT_TRUE(wf.AddNode(n1).ok());
    EXPECT_TRUE(wf.AddNode(n2).ok());
    EXPECT_TRUE(store_->DeployWorkflow(wf).ok());
  }

  int64_t Sum() {
    Table* sum = *store_->catalog().GetTable("running_sum");
    int64_t out = -1;
    sum->ForEach([&](RowId, const Tuple& row, const RowMeta&) {
      out = row[0].as_int64();
      return true;
    });
    return out;
  }

  size_t AppliedCount() {
    return (*store_->catalog().GetTable("applied"))->row_count();
  }

 private:
  SStore* store_;
};

SStore::Options LoggedOptions(const std::string& log_path, RecoveryMode mode) {
  SStore::Options opts;
  opts.log_path = log_path;
  opts.recovery_mode = mode;
  opts.log_sync = false;  // tests don't need real fsync
  return opts;
}

class RecoveryTest : public ::testing::TestWithParam<RecoveryMode> {};

TEST_P(RecoveryTest, CrashAfterCheckpointReplaysTail) {
  RecoveryMode mode = GetParam();
  std::string log_path = TempPath("rt_tail.log");
  std::string snap_path = TempPath("rt_tail.snap");

  {
    SStore live(LoggedOptions(log_path, mode));
    RecoverableApp app(&live);
    StreamInjector injector(&live.partition(), "ingest");
    for (int i = 1; i <= 10; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    ASSERT_TRUE(live.Checkpoint(snap_path).ok());
    // NOTE: as in H-Store, the log is not truncated at checkpoint in this
    // test; replaying already-applied transactions must be avoided by
    // snapshot+log consistency. We emulate the paper's setup by recovering
    // from the snapshot plus the *post-checkpoint* log records: restart
    // logging into a fresh segment at the checkpoint.
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
    CommandLog::Options seg;
    seg.path = log_path + ".tail";
    seg.sync = false;
    live.partition().AttachCommandLog(std::move(CommandLog::Open(seg)).value(),
                                      mode);
    for (int i = 11; i <= 15; ++i) {
      ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    }
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
    ASSERT_EQ(app.Sum(), (15 * 16) / 2);
  }  // "crash"

  SStore fresh;
  RecoverableApp app(&fresh);
  ASSERT_TRUE(fresh.Recover(snap_path, log_path + ".tail", mode).ok());
  EXPECT_EQ(app.Sum(), (15 * 16) / 2);
  EXPECT_EQ(app.AppliedCount(), 15u);
  EXPECT_EQ((*fresh.streams().GetStream("s1"))->row_count(), 0u);
}

TEST_P(RecoveryTest, RecoveryEquivalentToUninterruptedRun) {
  RecoveryMode mode = GetParam();
  std::string log_path = TempPath("rt_equiv.log");
  std::string snap_path = TempPath("rt_equiv.snap");

  // Uninterrupted reference run.
  int64_t expected_sum;
  size_t expected_applied;
  {
    SStore ref;
    RecoverableApp app(&ref);
    StreamInjector injector(&ref.partition(), "ingest");
    for (int i = 1; i <= 25; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    expected_sum = app.Sum();
    expected_applied = app.AppliedCount();
  }

  // Crashing run: empty checkpoint at start, all work in the log.
  {
    SStore live(LoggedOptions(log_path, mode));
    RecoverableApp app(&live);
    ASSERT_TRUE(live.Checkpoint(snap_path).ok());
    StreamInjector injector(&live.partition(), "ingest");
    for (int i = 1; i <= 25; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
  }

  SStore recovered;
  RecoverableApp app(&recovered);
  ASSERT_TRUE(recovered.Recover(snap_path, log_path, mode).ok());
  EXPECT_EQ(app.Sum(), expected_sum);
  EXPECT_EQ(app.AppliedCount(), expected_applied);
}

TEST_P(RecoveryTest, ExactlyOnceNoDuplicateInteriorExecutions) {
  RecoveryMode mode = GetParam();
  std::string log_path = TempPath("rt_once.log");
  std::string snap_path = TempPath("rt_once.snap");
  {
    SStore live(LoggedOptions(log_path, mode));
    RecoverableApp app(&live);
    ASSERT_TRUE(live.Checkpoint(snap_path).ok());
    StreamInjector injector(&live.partition(), "ingest");
    for (int i = 1; i <= 8; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
  }
  SStore recovered;
  RecoverableApp app(&recovered);
  ASSERT_TRUE(recovered.Recover(snap_path, log_path, mode).ok());
  // Each of the 8 batches applied exactly once: sum would differ if an
  // interior TE ran twice (strong mode logs it AND triggers could re-fire).
  EXPECT_EQ(app.Sum(), 36);
  EXPECT_EQ(app.AppliedCount(), 8u);
  EXPECT_EQ(recovered.recovery().replay_stats().replay_failures, 0u);
}

TEST_P(RecoveryTest, UnconsumedStreamBatchesResumeAfterRecovery) {
  RecoveryMode mode = GetParam();
  std::string log_path = TempPath("rt_resume.log");
  std::string snap_path = TempPath("rt_resume.snap");
  {
    SStore live(LoggedOptions(log_path, mode));
    RecoverableApp app(&live);
    // Simulate a crash where a border TE committed but its downstream
    // interior TE never ran: disable triggers, inject, checkpoint.
    live.triggers().SetPeTriggersEnabled(false);
    StreamInjector injector(&live.partition(), "ingest");
    ASSERT_TRUE(injector.InjectSync(Num(5)).committed());
    ASSERT_EQ((*live.streams().GetStream("s1"))->row_count(), 1u);
    ASSERT_TRUE(live.Checkpoint(snap_path).ok());
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
  }
  SStore recovered;
  RecoverableApp app(&recovered);
  ASSERT_TRUE(recovered.Recover(snap_path, log_path, mode).ok());
  if (mode == RecoveryMode::kWeak) {
    // Weak recovery fires residual triggers from the snapshot, then replays
    // the border record (which re-emits batch 1 and re-applies it). The
    // paper's weak guarantee is a *legal* state; with at-least-once border
    // replay over a committed-and-snapshotted batch, the batch applies from
    // the residual path and again from the log replay path unless the
    // application deduplicates. Here the snapshot contains the batch AND the
    // log contains the border record, so "apply" runs twice by design of
    // this adversarial test: sum = 10.
    EXPECT_EQ(app.Sum(), 10);
  } else {
    // Strong recovery: replay log re-runs ingest (batch 1 appended again to
    // the snapshot's copy). The snapshot's residual copy then fires after
    // replay. Strong recovery assumes log and snapshot are consistent (a
    // record is not both in the snapshot's stream state and the log); this
    // adversarial double-copy yields sum 10 as well, exercised for coverage.
    EXPECT_EQ(app.Sum(), 10);
  }
  EXPECT_GT(recovered.recovery().replay_stats().residual_triggers, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, RecoveryTest,
                         ::testing::Values(RecoveryMode::kStrong,
                                           RecoveryMode::kWeak),
                         [](const ::testing::TestParamInfo<RecoveryMode>& info) {
                           return info.param == RecoveryMode::kStrong
                                      ? "Strong"
                                      : "Weak";
                         });

TEST(RecoveryModeDifference, WeakLogsFewerRecords) {
  std::string strong_log = TempPath("diff_strong.log");
  std::string weak_log = TempPath("diff_weak.log");
  for (RecoveryMode mode : {RecoveryMode::kStrong, RecoveryMode::kWeak}) {
    std::string path =
        mode == RecoveryMode::kStrong ? strong_log : weak_log;
    SStore live(LoggedOptions(path, mode));
    RecoverableApp app(&live);
    StreamInjector injector(&live.partition(), "ingest");
    for (int i = 1; i <= 10; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
  }
  // Strong: 10 border + 10 interior records. Weak: 10 border only.
  EXPECT_EQ((*CommandLog::ReadAll(strong_log)).size(), 20u);
  EXPECT_EQ((*CommandLog::ReadAll(weak_log)).size(), 10u);
}

TEST(RecoveryWithWorkerThread, StrongRecoveryThroughClientRoundTrips) {
  std::string log_path = TempPath("worker_strong.log");
  std::string snap_path = TempPath("worker_strong.snap");
  {
    SStore live(LoggedOptions(log_path, RecoveryMode::kStrong));
    RecoverableApp app(&live);
    ASSERT_TRUE(live.Checkpoint(snap_path).ok());
    live.Start();
    StreamInjector injector(&live.partition(), "ingest");
    for (int i = 1; i <= 20; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
    while (live.partition().QueueDepth() > 0) {
    }
    live.Stop();
    ASSERT_TRUE(live.partition().DetachCommandLog().ok());
  }
  SStore recovered;
  RecoverableApp app(&recovered);
  recovered.Start();  // replay through the live scheduler
  ASSERT_TRUE(
      recovered.Recover(snap_path, log_path, RecoveryMode::kStrong).ok());
  recovered.Stop();
  EXPECT_EQ(app.Sum(), 210);
  EXPECT_EQ(app.AppliedCount(), 20u);
}

}  // namespace
}  // namespace sstore
