#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "query/expr.h"
#include "streaming/injector.h"
#include "streaming/sstore.h"

namespace sstore {
namespace {

Schema NumSchema() { return Schema({{"x", ValueType::kBigInt}}); }

Tuple Num(int64_t x) { return {Value::BigInt(x)}; }

TEST(StreamManagerTest, DefineAndGet) {
  SStore store;
  ASSERT_TRUE(store.streams().DefineStream("s", NumSchema()).ok());
  EXPECT_TRUE(store.streams().HasStream("s"));
  EXPECT_EQ((*store.streams().GetStream("s"))->kind(), TableKind::kStream);
  EXPECT_EQ(store.streams().DefineStream("s", NumSchema()).code(),
            StatusCode::kAlreadyExists);
}

TEST(StreamManagerTest, BaseTableIsNotAStream) {
  SStore store;
  ASSERT_TRUE(store.catalog().CreateTable("t", NumSchema()).ok());
  EXPECT_FALSE(store.streams().HasStream("t"));
  EXPECT_FALSE(store.streams().GetStream("t").ok());
}

TEST(StreamManagerTest, BatchContentsAndPendingBatches) {
  SStore store;
  ASSERT_TRUE(store.streams().DefineStream("s", NumSchema()).ok());
  ASSERT_TRUE(store.ee().InsertBatch("s", {Num(1), Num(2)}, 7, nullptr).ok());
  ASSERT_TRUE(store.ee().InsertBatch("s", {Num(3)}, 9, nullptr).ok());
  EXPECT_EQ((*store.streams().BatchContents("s", 7)).size(), 2u);
  EXPECT_EQ((*store.streams().BatchContents("s", 9)).size(), 1u);
  std::vector<int64_t> pending = *store.streams().PendingBatches("s");
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0], 7);
  EXPECT_EQ(pending[1], 9);
}

TEST(StreamManagerTest, GcWaitsForAllConsumers) {
  SStore store;
  ASSERT_TRUE(store.streams().DefineStream("s", NumSchema()).ok());
  store.streams().SetConsumerCount("s", 2);
  ASSERT_TRUE(store.ee().InsertBatch("s", {Num(1)}, 1, nullptr).ok());
  EXPECT_EQ(*store.streams().OnBatchConsumed("s", 1), 0u);  // 1 of 2
  EXPECT_EQ((*store.streams().GetStream("s"))->row_count(), 1u);
  EXPECT_EQ(*store.streams().OnBatchConsumed("s", 1), 1u);  // reclaimed
  EXPECT_EQ((*store.streams().GetStream("s"))->row_count(), 0u);
}

TEST(StreamManagerTest, DrainReturnsArrivalOrder) {
  SStore store;
  ASSERT_TRUE(store.streams().DefineStream("s", NumSchema()).ok());
  ASSERT_TRUE(store.ee().InsertBatch("s", {Num(5), Num(6), Num(7)}, 1, nullptr).ok());
  std::vector<Tuple> rows = *store.streams().Drain("s");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::BigInt(5));
  EXPECT_EQ(rows[2][0], Value::BigInt(7));
  EXPECT_EQ((*store.streams().GetStream("s"))->row_count(), 0u);
}

class WindowTest : public ::testing::Test {
 protected:
  WindowSpec Spec(int64_t size, int64_t slide,
                  WindowKind kind = WindowKind::kTupleBased) {
    WindowSpec spec;
    spec.name = "w";
    spec.schema = NumSchema();
    spec.kind = kind;
    spec.size = size;
    spec.slide = slide;
    spec.owner_proc = "owner";
    return spec;
  }

  SStore store_;
  Executor exec_;
};

TEST_F(WindowTest, RejectsBadParameters) {
  EXPECT_FALSE(store_.windows().DefineWindow(Spec(0, 1)).ok());
  EXPECT_FALSE(store_.windows().DefineWindow(Spec(5, 0)).ok());
  EXPECT_FALSE(store_.windows().DefineWindow(Spec(2, 5)).ok());  // slide > size
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(5, 5)).ok());   // tumbling OK
  EXPECT_EQ(store_.windows().DefineWindow(Spec(5, 5)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(WindowTest, StagingInvisibleUntilFirstFullWindow) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(3, 1)).ok());
  ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(1), Num(2)}).ok());
  EXPECT_TRUE((*store_.windows().ActiveContents("w")).empty());
  EXPECT_EQ(*store_.windows().SlideCount("w"), 0);
  ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(3)}).ok());
  std::vector<Tuple> active = *store_.windows().ActiveContents("w");
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0][0], Value::BigInt(1));
  EXPECT_EQ(*store_.windows().SlideCount("w"), 1);
}

TEST_F(WindowTest, SlideExpiresOldestAndActivatesStaged) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(3, 1)).ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(i)}).ok());
  }
  // Windows: [1,2,3] -> [2,3,4] -> [3,4,5].
  std::vector<Tuple> active = *store_.windows().ActiveContents("w");
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0][0], Value::BigInt(3));
  EXPECT_EQ(active[2][0], Value::BigInt(5));
  EXPECT_EQ(*store_.windows().SlideCount("w"), 3);
}

TEST_F(WindowTest, SlideBiggerThanOneWaitsForSlideWorth) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(4, 2)).ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(i)}).ok());
  }
  // First window [1..4] at tuple 4; tuple 5 staged (needs 2 to slide).
  std::vector<Tuple> active = *store_.windows().ActiveContents("w");
  ASSERT_EQ(active.size(), 4u);
  EXPECT_EQ(active[0][0], Value::BigInt(1));
  ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(6)}).ok());
  active = *store_.windows().ActiveContents("w");
  ASSERT_EQ(active.size(), 4u);
  EXPECT_EQ(active[0][0], Value::BigInt(3));  // slid by 2
  EXPECT_EQ(active[3][0], Value::BigInt(6));
}

TEST_F(WindowTest, TumblingWindowReplacesContents) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(3, 3)).ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(i)}).ok());
  }
  std::vector<Tuple> active = *store_.windows().ActiveContents("w");
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0][0], Value::BigInt(4));
  EXPECT_EQ(*store_.windows().SlideCount("w"), 2);
}

TEST_F(WindowTest, ActiveCountNeverExceedsSize) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(5, 3)).ok());
  Table* w = *store_.catalog().GetTable("w");
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(i)}).ok());
    EXPECT_LE(w->active_count(), 5u);
    EXPECT_LT(w->staged_count(), 3u + 5u);
  }
}

TEST_F(WindowTest, SlideTriggerFiresInsideEE) {
  ASSERT_TRUE(store_.catalog().CreateTable("slide_log", NumSchema()).ok());
  ASSERT_TRUE(store_.ee()
                  .RegisterFragment(
                      "on_slide",
                      [](ExecutionEngine& ee, Executor& exec,
                         const Tuple& params) -> Result<std::vector<Tuple>> {
                        SSTORE_ASSIGN_OR_RETURN(
                            Table * log, ee.catalog()->GetTable("slide_log"));
                        SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                                exec.Insert(log, {params[0]}));
                        (void)rid;
                        return std::vector<Tuple>{};
                      })
                  .ok());
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(2, 1)).ok());
  ASSERT_TRUE(store_.windows().AttachSlideTrigger("w", "on_slide").ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(i)}).ok());
  }
  // Slides at tuples 2,3,4 => 3 firings with generations 1,2,3.
  Table* log = *store_.catalog().GetTable("slide_log");
  EXPECT_EQ(log->row_count(), 3u);
}

TEST_F(WindowTest, TimeBasedWindowSlidesOnTimestamps) {
  WindowSpec spec;
  spec.name = "tw";
  spec.schema = Schema({{"ts", ValueType::kTimestamp}, {"x", ValueType::kBigInt}});
  spec.kind = WindowKind::kTimeBased;
  spec.size = 10'000'000;  // 10 s
  spec.slide = 1'000'000;  // 1 s
  spec.ts_column = 0;
  ASSERT_TRUE(store_.windows().DefineWindow(spec).ok());
  auto row = [](int64_t sec, int64_t x) {
    return Tuple{Value::Timestamp(sec * 1'000'000), Value::BigInt(x)};
  };
  // Tuples at t=0..11s, one per second.
  for (int64_t s = 0; s <= 11; ++s) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "tw", {row(s, s)}).ok());
  }
  // The last slide boundary crossed is at t=11s; window = [1s, 11s).
  std::vector<Tuple> active = *store_.windows().ActiveContents("tw");
  ASSERT_FALSE(active.empty());
  EXPECT_EQ(active.front()[1], Value::BigInt(1));
  EXPECT_EQ(active.back()[1], Value::BigInt(10));
  EXPECT_GT(*store_.windows().SlideCount("tw"), 0);
}

TEST_F(WindowTest, ScopingDeniesForeignProcedure) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(3, 1)).ok());
  auto access_w = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
    return ctx.table("w").status();
  });
  ASSERT_TRUE(
      store_.partition().RegisterProcedure("owner", SpKind::kBorder, access_w).ok());
  ASSERT_TRUE(
      store_.partition().RegisterProcedure("foreign", SpKind::kBorder, access_w).ok());
  EXPECT_TRUE(store_.partition().ExecuteSync("owner", {}, 1).committed());
  TxnOutcome denied = store_.partition().ExecuteSync("foreign", {}, 1);
  EXPECT_TRUE(denied.status.IsPermissionDenied());
}

TEST_F(WindowTest, PeTriggersForbiddenOnWindows) {
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(3, 1)).ok());
  ASSERT_TRUE(store_.ee()
                  .RegisterFragment("noop",
                                    [](ExecutionEngine&, Executor&,
                                       const Tuple&) -> Result<std::vector<Tuple>> {
                                      return std::vector<Tuple>{};
                                    })
                  .ok());
  // EE insert triggers must not attach to window tables either; window
  // triggers go through AttachSlideTrigger.
  EXPECT_FALSE(store_.ee().AttachInsertTrigger("w", "noop").ok());
}

TEST_F(WindowTest, WindowStateCarriesAcrossTEsOfOwner) {
  // Paper §2.2: window state carries over between executions of the owning
  // SP (here: repeated invocations keep sliding one shared window).
  ASSERT_TRUE(store_.windows().DefineWindow(Spec(3, 1)).ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store_.windows().Insert(exec_, "w", {Num(i)}).ok());
  }
  EXPECT_EQ(*store_.windows().SlideCount("w"), 2);
}

class WorkflowTest : public ::testing::Test {
 protected:
  static WorkflowNode Node(const std::string& proc, SpKind kind,
                           std::vector<std::string> in,
                           std::vector<std::string> out) {
    WorkflowNode n;
    n.proc = proc;
    n.kind = kind;
    n.input_streams = std::move(in);
    n.output_streams = std::move(out);
    return n;
  }
};

TEST_F(WorkflowTest, ChainTopologicalOrder) {
  Workflow wf("chain");
  ASSERT_TRUE(wf.AddNode(Node("sp1", SpKind::kBorder, {}, {"s1"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("sp2", SpKind::kInterior, {"s1"}, {"s2"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("sp3", SpKind::kInterior, {"s2"}, {})).ok());
  ASSERT_TRUE(wf.Validate().ok());
  std::vector<std::string> order = *wf.TopologicalOrder();
  EXPECT_EQ(order, (std::vector<std::string>{"sp1", "sp2", "sp3"}));
  auto ranks = *wf.TopologicalRanks();
  EXPECT_EQ(ranks["sp3"], 2u);
  EXPECT_EQ(wf.ConsumersOf("s1"), std::vector<std::string>{"sp2"});
  EXPECT_EQ(wf.ProducersOf("s2"), std::vector<std::string>{"sp2"});
  EXPECT_EQ(*wf.SuccessorsOf("sp1"), std::vector<std::string>{"sp2"});
}

TEST_F(WorkflowTest, CycleDetected) {
  Workflow wf("cycle");
  ASSERT_TRUE(wf.AddNode(Node("a", SpKind::kBorder, {"s2"}, {"s1"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("b", SpKind::kInterior, {"s1"}, {"s2"})).ok());
  EXPECT_FALSE(wf.Validate().ok());
}

TEST_F(WorkflowTest, InteriorWithoutInputRejected) {
  Workflow wf("bad");
  EXPECT_FALSE(wf.AddNode(Node("x", SpKind::kInterior, {}, {"s"})).ok());
}

TEST_F(WorkflowTest, OltpNodeRejected) {
  Workflow wf("bad");
  EXPECT_FALSE(wf.AddNode(Node("x", SpKind::kOltp, {}, {})).ok());
}

TEST_F(WorkflowTest, NoBorderRejected) {
  Workflow wf("bad");
  ASSERT_TRUE(wf.AddNode(Node("x", SpKind::kInterior, {"s"}, {})).ok());
  EXPECT_FALSE(wf.Validate().ok());
}

TEST_F(WorkflowTest, DuplicateNodeRejected) {
  Workflow wf("dup");
  ASSERT_TRUE(wf.AddNode(Node("x", SpKind::kBorder, {}, {"s"})).ok());
  EXPECT_EQ(wf.AddNode(Node("x", SpKind::kBorder, {}, {"s"})).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(WorkflowTest, DiamondTopology) {
  Workflow wf("diamond");
  ASSERT_TRUE(wf.AddNode(Node("src", SpKind::kBorder, {}, {"l", "r"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("left", SpKind::kInterior, {"l"}, {"lo"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("right", SpKind::kInterior, {"r"}, {"ro"})).ok());
  ASSERT_TRUE(
      wf.AddNode(Node("join", SpKind::kInterior, {"lo", "ro"}, {})).ok());
  ASSERT_TRUE(wf.Validate().ok());
  auto ranks = *wf.TopologicalRanks();
  EXPECT_EQ(ranks["src"], 0u);
  EXPECT_EQ(ranks["join"], 3u);
}

TEST_F(WorkflowTest, ScheduleCheckerAcceptsCorrectOrder) {
  Workflow wf("chain");
  ASSERT_TRUE(wf.AddNode(Node("sp1", SpKind::kBorder, {}, {"s1"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("sp2", SpKind::kInterior, {"s1"}, {})).ok());
  // Both legal interleavings from paper Figure 2.
  EXPECT_TRUE(ValidateSchedule(
                  wf, {{"sp1", 1}, {"sp2", 1}, {"sp1", 2}, {"sp2", 2}})
                  .ok());
  EXPECT_TRUE(ValidateSchedule(
                  wf, {{"sp1", 1}, {"sp1", 2}, {"sp2", 1}, {"sp2", 2}})
                  .ok());
}

TEST_F(WorkflowTest, ScheduleCheckerRejectsWorkflowOrderViolation) {
  Workflow wf("chain");
  ASSERT_TRUE(wf.AddNode(Node("sp1", SpKind::kBorder, {}, {"s1"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("sp2", SpKind::kInterior, {"s1"}, {})).ok());
  EXPECT_FALSE(ValidateSchedule(wf, {{"sp2", 1}, {"sp1", 1}}).ok());
}

TEST_F(WorkflowTest, ScheduleCheckerRejectsStreamOrderViolation) {
  Workflow wf("chain");
  ASSERT_TRUE(wf.AddNode(Node("sp1", SpKind::kBorder, {}, {"s1"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("sp2", SpKind::kInterior, {"s1"}, {})).ok());
  EXPECT_FALSE(ValidateSchedule(
                   wf, {{"sp1", 2}, {"sp2", 2}, {"sp1", 1}, {"sp2", 1}})
                   .ok());
}

TEST_F(WorkflowTest, ScheduleCheckerIgnoresOltpEvents) {
  Workflow wf("chain");
  ASSERT_TRUE(wf.AddNode(Node("sp1", SpKind::kBorder, {}, {"s1"})).ok());
  ASSERT_TRUE(wf.AddNode(Node("sp2", SpKind::kInterior, {"s1"}, {})).ok());
  EXPECT_TRUE(ValidateSchedule(
                  wf, {{"sp1", 1}, {"oltp_thing", 0}, {"sp2", 1}})
                  .ok());
}

/// Builds a 3-stage chain workflow over an SStore: border sp1 emits to s1,
/// interior sp2 copies s1->s2, interior sp3 sums s2 into "sink".
class ChainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.streams().DefineStream("s1", NumSchema()).ok());
    ASSERT_TRUE(store_.streams().DefineStream("s2", NumSchema()).ok());
    ASSERT_TRUE(store_.catalog().CreateTable("sink", NumSchema()).ok());

    auto sp1 = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
      return ctx.EmitToStream("s1", {ctx.params()});
    });
    auto sp2 = std::make_shared<LambdaProcedure>([this](ProcContext& ctx) {
      SSTORE_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          store_.streams().BatchContents("s1", ctx.batch_id()));
      return ctx.EmitToStream("s2", rows);
    });
    auto sp3 = std::make_shared<LambdaProcedure>([this](ProcContext& ctx) {
      SSTORE_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          store_.streams().BatchContents("s2", ctx.batch_id()));
      SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
      for (const Tuple& row : rows) {
        SSTORE_ASSIGN_OR_RETURN(RowId rid, ctx.exec().Insert(sink, row));
        (void)rid;
      }
      return Status::OK();
    });
    ASSERT_TRUE(store_.partition().RegisterProcedure("sp1", SpKind::kBorder, sp1).ok());
    ASSERT_TRUE(
        store_.partition().RegisterProcedure("sp2", SpKind::kInterior, sp2).ok());
    ASSERT_TRUE(
        store_.partition().RegisterProcedure("sp3", SpKind::kInterior, sp3).ok());

    WorkflowNode n1, n2, n3;
    n1.proc = "sp1";
    n1.kind = SpKind::kBorder;
    n1.output_streams = {"s1"};
    n2.proc = "sp2";
    n2.kind = SpKind::kInterior;
    n2.input_streams = {"s1"};
    n2.output_streams = {"s2"};
    n3.proc = "sp3";
    n3.kind = SpKind::kInterior;
    n3.input_streams = {"s2"};
    wf_ = std::make_unique<Workflow>("chain");
    ASSERT_TRUE(wf_->AddNode(n1).ok());
    ASSERT_TRUE(wf_->AddNode(n2).ok());
    ASSERT_TRUE(wf_->AddNode(n3).ok());
    ASSERT_TRUE(store_.DeployWorkflow(*wf_).ok());

    // Record the committed schedule for the checker.
    store_.partition().AddCommitHook(
        [this](Partition&, const TransactionExecution& te) {
          schedule_.push_back({te.proc_name(), te.batch_id()});
        });
  }

  SStore store_;
  std::unique_ptr<Workflow> wf_;
  std::vector<ScheduleEvent> schedule_;
};

TEST_F(ChainFixture, PeTriggersDriveFullWorkflowInline) {
  StreamInjector injector(&store_.partition(), "sp1");
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
  }
  Table* sink = *store_.catalog().GetTable("sink");
  EXPECT_EQ(sink->row_count(), 5u);
  // Streams fully garbage-collected after consumption.
  EXPECT_EQ((*store_.streams().GetStream("s1"))->row_count(), 0u);
  EXPECT_EQ((*store_.streams().GetStream("s2"))->row_count(), 0u);
  // 5 rounds x 3 TEs, in a correct order.
  EXPECT_EQ(schedule_.size(), 15u);
  EXPECT_TRUE(ValidateSchedule(*wf_, schedule_).ok());
  EXPECT_EQ(store_.triggers().pe_trigger_firings(), 10u);
}

TEST_F(ChainFixture, PeTriggersDriveFullWorkflowThreaded) {
  store_.Start();
  StreamInjector injector(&store_.partition(), "sp1");
  std::vector<TicketPtr> tickets;
  for (int i = 1; i <= 200; ++i) tickets.push_back(injector.InjectAsync(Num(i)));
  for (auto& t : tickets) ASSERT_TRUE(t->Wait().committed());
  // Wait for triggered interiors of the last round to finish.
  while (store_.partition().QueueDepth() > 0) {
  }
  store_.Stop();
  EXPECT_EQ((*store_.catalog().GetTable("sink"))->row_count(), 200u);
  EXPECT_TRUE(ValidateSchedule(*wf_, schedule_).ok());
}

TEST_F(ChainFixture, DisabledTriggersSuppressDownstream) {
  store_.triggers().SetPeTriggersEnabled(false);
  StreamInjector injector(&store_.partition(), "sp1");
  ASSERT_TRUE(injector.InjectSync(Num(1)).committed());
  EXPECT_EQ((*store_.catalog().GetTable("sink"))->row_count(), 0u);
  EXPECT_EQ((*store_.streams().GetStream("s1"))->row_count(), 1u);
  // Residual firing picks the batch back up.
  store_.triggers().SetPeTriggersEnabled(true);
  ASSERT_EQ(*store_.triggers().FireResidualTriggers(), 1u);
  store_.partition().DrainQueueInline();
  EXPECT_EQ((*store_.catalog().GetTable("sink"))->row_count(), 1u);
}

TEST_F(ChainFixture, OltpInterleavesWithoutBreakingWorkflowOrder) {
  ASSERT_TRUE(store_.catalog().CreateTable("misc", NumSchema()).ok());
  auto oltp = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
    SSTORE_ASSIGN_OR_RETURN(Table * t, ctx.table("misc"));
    SSTORE_ASSIGN_OR_RETURN(RowId rid, ctx.exec().Insert(t, ctx.params()));
    (void)rid;
    return Status::OK();
  });
  ASSERT_TRUE(store_.partition().RegisterProcedure("oltp", SpKind::kOltp, oltp).ok());
  store_.Start();
  StreamInjector injector(&store_.partition(), "sp1");
  for (int i = 1; i <= 50; ++i) {
    TicketPtr a = injector.InjectAsync(Num(i));
    TicketPtr b = store_.partition().SubmitAsync(Invocation{"oltp", Num(i), 0});
    ASSERT_TRUE(a->Wait().committed());
    ASSERT_TRUE(b->Wait().committed());
  }
  while (store_.partition().QueueDepth() > 0) {
  }
  store_.Stop();
  EXPECT_EQ((*store_.catalog().GetTable("sink"))->row_count(), 50u);
  EXPECT_EQ((*store_.catalog().GetTable("misc"))->row_count(), 50u);
  EXPECT_TRUE(ValidateSchedule(*wf_, schedule_).ok());
}

TEST_F(ChainFixture, DeployRejectsUnknownProcedure) {
  Workflow bad("bad");
  WorkflowNode n;
  n.proc = "ghost";
  n.kind = SpKind::kBorder;
  n.output_streams = {"s1"};
  ASSERT_TRUE(bad.AddNode(n).ok());
  EXPECT_TRUE(store_.DeployWorkflow(bad).IsNotFound());
}

TEST(TriggerJoinTest, MultiInputConsumerWaitsForAllStreams) {
  SStore store;
  ASSERT_TRUE(store.streams().DefineStream("l", NumSchema()).ok());
  ASSERT_TRUE(store.streams().DefineStream("r", NumSchema()).ok());
  ASSERT_TRUE(store.catalog().CreateTable("sink", NumSchema()).ok());

  auto src = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
    SSTORE_RETURN_NOT_OK(ctx.EmitToStream("l", {ctx.params()}));
    return ctx.EmitToStream("r", {ctx.params()});
  });
  auto join = std::make_shared<LambdaProcedure>([&store](ProcContext& ctx) {
    SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
    SSTORE_ASSIGN_OR_RETURN(RowId rid,
                            ctx.exec().Insert(sink, Num(ctx.batch_id())));
    (void)rid;
    return Status::OK();
  });
  ASSERT_TRUE(store.partition().RegisterProcedure("src", SpKind::kBorder, src).ok());
  ASSERT_TRUE(store.partition().RegisterProcedure("join", SpKind::kInterior, join).ok());

  Workflow wf("join_wf");
  WorkflowNode n1, n2;
  n1.proc = "src";
  n1.kind = SpKind::kBorder;
  n1.output_streams = {"l", "r"};
  n2.proc = "join";
  n2.kind = SpKind::kInterior;
  n2.input_streams = {"l", "r"};
  ASSERT_TRUE(wf.AddNode(n1).ok());
  ASSERT_TRUE(wf.AddNode(n2).ok());
  ASSERT_TRUE(store.DeployWorkflow(wf).ok());

  StreamInjector injector(&store.partition(), "src");
  ASSERT_TRUE(injector.InjectSync(Num(1)).committed());
  // join ran exactly once (not once per input stream).
  EXPECT_EQ((*store.catalog().GetTable("sink"))->row_count(), 1u);
  // Both stream batches were GC'ed after the join consumed them.
  EXPECT_EQ((*store.streams().GetStream("l"))->row_count(), 0u);
  EXPECT_EQ((*store.streams().GetStream("r"))->row_count(), 0u);
}

TEST(InjectorTest, AssignsMonotoneBatchIds) {
  SStore store;
  ASSERT_TRUE(store.streams().DefineStream("s", NumSchema()).ok());
  std::vector<int64_t> batches;
  auto sp = std::make_shared<LambdaProcedure>([&batches](ProcContext& ctx) {
    batches.push_back(ctx.batch_id());
    return Status::OK();
  });
  ASSERT_TRUE(store.partition().RegisterProcedure("in", SpKind::kBorder, sp).ok());
  StreamInjector injector(&store.partition(), "in");
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(injector.InjectSync(Num(i)).committed());
  EXPECT_EQ(batches, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(injector.batches_injected(), 3);
}

TEST(InjectorTest, BackpressureBoundsQueueDepth) {
  constexpr size_t kMaxDepth = 4;
  SStore store;
  // A border SP slow enough that an unthrottled producer would outrun the
  // worker and grow the queue. No interior SPs, so queue depth is driven by
  // client injections alone.
  auto slow = std::make_shared<LambdaProcedure>([](ProcContext&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return Status::OK();
  });
  ASSERT_TRUE(store.partition().RegisterProcedure("slow", SpKind::kBorder, slow).ok());
  store.Start();

  StreamInjector::Options opts;
  opts.max_queue_depth = kMaxDepth;
  StreamInjector injector(&store.partition(), "slow", opts);
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 100; ++i) {
    tickets.push_back(injector.InjectAsync(Num(i)));
    // InjectAsync only enqueues once the depth has dropped below the limit,
    // so right after it returns the queue holds at most kMaxDepth requests
    // (the worker can only have shrunk it since).
    EXPECT_LE(store.partition().QueueDepth(), kMaxDepth);
  }
  for (auto& t : tickets) ASSERT_TRUE(t->Wait().committed());
  store.Stop();
  EXPECT_EQ(injector.batches_injected(), 100);
}

TEST(NestedWorkflowTest, NestedTxnIsolatesWorkflowRound) {
  // Paper §2.3: SP1 writes a shared table, SP2 reads it; wrapping them in a
  // nested transaction keeps an OLTP writer from interleaving.
  SStore store;
  ASSERT_TRUE(store.catalog().CreateTable("shared", NumSchema()).ok());
  auto writer = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
    SSTORE_ASSIGN_OR_RETURN(Table * t, ctx.table("shared"));
    SSTORE_ASSIGN_OR_RETURN(RowId rid, ctx.exec().Insert(t, ctx.params()));
    (void)rid;
    return Status::OK();
  });
  auto reader = std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
    SSTORE_ASSIGN_OR_RETURN(Table * t, ctx.table("shared"));
    SSTORE_ASSIGN_OR_RETURN(size_t n, ctx.exec().Count(t));
    ctx.EmitOutput(Num(static_cast<int64_t>(n)));
    return Status::OK();
  });
  ASSERT_TRUE(store.partition().RegisterProcedure("w", SpKind::kBorder, writer).ok());
  ASSERT_TRUE(store.partition().RegisterProcedure("r", SpKind::kInterior, reader).ok());
  store.Start();
  TxnOutcome out = store.partition().ExecuteNestedSync(
      {{"w", Num(1), 1}, {"r", {}, 1}});
  store.Stop();
  ASSERT_TRUE(out.committed());
  ASSERT_EQ(out.output.size(), 1u);
  EXPECT_EQ(out.output[0][0], Value::BigInt(1));
}

}  // namespace
}  // namespace sstore
