// Crash-fault-injection torture suite (ISSUE 7): the deterministic failpoint
// framework, crash/torn-write faults at every durability site (command-log
// append/flush, 2PC decision log, snapshot write/rename, manifest commit,
// checkpoint barrier), recovery to a consistent cut after each, composable
// kill -> recover -> ingest -> kill -> recover chains, delta snapshots, the
// background checkpointer, and kBusy shedding while the barrier is closed.
//
// Each TEST runs as its own ctest entry (own process), so process-global
// failpoint state never leaks between scenarios; tests still ResetAll() on
// exit so the whole binary also passes when run directly.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/deployment.h"
#include "cluster/topology.h"
#include "common/failpoint.h"
#include "log/command_log.h"
#include "log/snapshot.h"
#include "query/executor.h"
#include "server/client.h"
#include "server/wire_server.h"
#include "streaming/injector.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace {

std::string TempPath(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return ::testing::TempDir() + "/sstore_dur_" + pid + "_" + name;
}

std::string MakeDir(const std::string& name) {
  std::string path = TempPath(name);
  ::mkdir(path.c_str(), 0755);
  return path;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Schema KeyValSchema() {
  return Schema({{"key", ValueType::kBigInt}, {"val", ValueType::kBigInt}});
}

Tuple KeyVal(int64_t key, int64_t val) {
  return {Value::BigInt(key), Value::BigInt(val)};
}

std::vector<Tuple> TableRows(SStore& store, const std::string& name) {
  Table* table = *store.catalog().GetTable(name);
  Executor exec;
  ScanSpec spec;
  spec.table = table;
  return *exec.Scan(spec);
}

/// Every scenario must leave the process clean: no armed sites, no sticky
/// crashed flag (a leaked kCrash would freeze every later component).
class FailpointGuard : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ResetAll(); }
  void TearDown() override { failpoint::ResetAll(); }
};

// ---- SSTORE_FAILPOINTS environment parsing ----
//
// Runs against the lazily-latched env parse, so this test (own process under
// ctest) sets the variable before the first Evaluate in the binary.

TEST(FailpointEnvTest, ParsesSpecWithSkipAndCount) {
  // Trailing ';' is tolerated; anything malformed would abort (see the
  // ParseSpec tests below for each rejected shape).
  ASSERT_EQ(::setenv("SSTORE_FAILPOINTS",
                     "env.err=error;env.crash=crash@2x3;", 1),
            0);
  EXPECT_EQ(failpoint::InitFromEnv(), 2u);
  EXPECT_TRUE(failpoint::AnyActive());

  // env.err: fires once, then self-disarms.
  EXPECT_EQ(failpoint::Evaluate("env.err"), failpoint::Action::kError);
  EXPECT_EQ(failpoint::Evaluate("env.err"), failpoint::Action::kOff);

  // env.crash: @2 skips two hits, then x3 fires three times.
  EXPECT_EQ(failpoint::Evaluate("env.crash"), failpoint::Action::kOff);
  EXPECT_EQ(failpoint::Evaluate("env.crash"), failpoint::Action::kOff);
  EXPECT_FALSE(failpoint::CrashRequested());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(failpoint::Evaluate("env.crash"), failpoint::Action::kCrash);
  }
  EXPECT_TRUE(failpoint::CrashRequested());
  EXPECT_EQ(failpoint::Evaluate("env.crash"), failpoint::Action::kOff);
  EXPECT_EQ(failpoint::Hits("env.crash"), 6u);

  // A second parse is a no-op (the env is latched, not re-read).
  EXPECT_EQ(failpoint::InitFromEnv(), 0u);

  failpoint::ResetAll();
  ::unsetenv("SSTORE_FAILPOINTS");
  EXPECT_FALSE(failpoint::CrashRequested());
  EXPECT_FALSE(failpoint::AnyActive());
}

// ---- Strict spec parsing: every malformed shape is rejected loudly ----
//
// ParseSpec is the same parser the SSTORE_FAILPOINTS funnel uses; the env
// path differs only in that it aborts instead of returning the Status.

TEST_F(FailpointGuard, ParseSpecRejectsEachMalformedShape) {
  struct BadCase {
    const char* spec;
    const char* why;  // substring the error message must carry
  };
  const BadCase cases[] = {
      {"no_equals_sign", "missing '='"},
      {"=error", "empty site name"},
      {"site=", "empty action"},
      {"site=frob", "unknown action 'frob'"},
      {"site=fsync_error", "unknown action"},  // near-miss of a real name
      {"site=error@", "skip '@N'"},
      {"site=error@z", "skip '@N'"},
      {"site=error@-1", "skip '@N'"},          // negative skip
      {"site=error@2q", "skip '@N'"},          // trailing garbage
      {"site=errorx", "count 'xM'"},           // empty count
      {"site=errorxq", "count 'xM'"},
      {"site=errorx0", "count 'xM'"},          // zero fires is nonsense
      {"site=errorx-2", "count 'xM'"},         // only -1 means unlimited
      {"site=error@1x2x3", "count 'xM'"},      // doubled count suffix
  };
  for (const BadCase& c : cases) {
    size_t armed = 999;
    Status st = failpoint::ParseSpec(c.spec, &armed);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.spec;
    EXPECT_NE(st.message().find(c.why), std::string::npos)
        << c.spec << " -> " << st.message();
    EXPECT_EQ(armed, 0u) << c.spec;
    EXPECT_FALSE(failpoint::AnyActive()) << c.spec;
  }
}

TEST_F(FailpointGuard, ParseSpecIsAllOrNothing) {
  // A bad token anywhere arms NOTHING, including the valid entries before
  // it — a typo'd schedule must not half-arm.
  size_t armed = 999;
  Status st = failpoint::ParseSpec("good.a=error;good.b=crash@1;oops", &armed);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("'oops'"), std::string::npos) << st.message();
  EXPECT_EQ(armed, 0u);
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_EQ(failpoint::Evaluate("good.a"), failpoint::Action::kOff);
}

TEST_F(FailpointGuard, ParseSpecAcceptsValidShapes) {
  // Empty entries (trailing/doubled ';') are tolerated; x-1 = unlimited.
  size_t armed = 0;
  ASSERT_TRUE(failpoint::ParseSpec(
                  "a=error;;b=torn@3;c=crash@0x-1;", &armed)
                  .ok());
  EXPECT_EQ(armed, 3u);
  EXPECT_EQ(failpoint::Evaluate("a"), failpoint::Action::kError);
  EXPECT_EQ(failpoint::Evaluate("a"), failpoint::Action::kOff);  // x1 default
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(failpoint::Evaluate("b"), failpoint::Action::kOff);  // skipped
  }
  EXPECT_EQ(failpoint::Evaluate("b"), failpoint::Action::kTornWrite);
  for (int i = 0; i < 8; ++i) {  // -1 never exhausts
    EXPECT_EQ(failpoint::Evaluate("c"), failpoint::Action::kCrash);
  }
  // An empty spec is valid and arms nothing.
  ASSERT_TRUE(failpoint::ParseSpec("", &armed).ok());
  EXPECT_EQ(armed, 0u);
}

TEST_F(FailpointGuard, ParseSpecOrDieAbortsOnMalformedSpec) {
  // The env funnel's behavior, death-tested deterministically (InitFromEnv
  // itself is latched per process, so it cannot be re-fired here).
  EXPECT_DEATH(failpoint::ParseSpecOrDie("wire.accept=erorr"),
               "SSTORE_FAILPOINTS.*unknown action 'erorr'");
  EXPECT_DEATH(failpoint::ParseSpecOrDie("garbage"),
               "SSTORE_FAILPOINTS.*missing '='");
}

TEST_F(FailpointGuard, ActivateCheckAndTriggerSemantics) {
  // Unarmed sites are free and OK.
  EXPECT_TRUE(failpoint::Check("never.armed").ok());
  EXPECT_EQ(failpoint::Evaluate("never.armed"), failpoint::Action::kOff);

  failpoint::Activate("t.err", failpoint::Action::kError, /*skip=*/1,
                      /*count=*/2);
  EXPECT_TRUE(failpoint::Check("t.err").ok());  // skipped hit
  EXPECT_TRUE(failpoint::Check("t.err").code() == StatusCode::kIOError);
  EXPECT_TRUE(failpoint::Check("t.err").code() == StatusCode::kIOError);
  EXPECT_TRUE(failpoint::Check("t.err").ok());  // trigger exhausted
  EXPECT_FALSE(failpoint::CrashRequested());    // kError never sets the flag

  failpoint::Activate("t.crash", failpoint::Action::kCrash);
  EXPECT_TRUE(failpoint::Check("t.crash").code() == StatusCode::kIOError);
  EXPECT_TRUE(failpoint::CrashRequested());

  // Deactivate disarms without firing; ResetAll clears the crashed flag.
  failpoint::Activate("t.off", failpoint::Action::kError, 0, -1);
  failpoint::Deactivate("t.off");
  EXPECT_TRUE(failpoint::Check("t.off").ok());
  failpoint::ResetAll();
  EXPECT_FALSE(failpoint::CrashRequested());
  EXPECT_FALSE(failpoint::AnyActive());
}

// ---- CommandLog under injected faults ----

LogRecord TxnRecord(int64_t id) {
  LogRecord r;
  r.txn_id = id;
  r.proc = "p";
  r.params = KeyVal(id, id);
  r.record_type = static_cast<uint8_t>(LogRecordType::kTxn);
  return r;
}

TEST_F(FailpointGuard, CommandLogFlushErrorIsStickyAndFreezesTheFile) {
  std::string path = TempPath("sticky.log");
  CommandLog::Options opts;
  opts.path = path;
  opts.group_size = 100;  // buffer; flush only when told to
  opts.sync = false;
  Result<std::unique_ptr<CommandLog>> log = CommandLog::Open(opts);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  ASSERT_TRUE((*log)->Append(TxnRecord(1)).ok());
  ASSERT_TRUE((*log)->Flush().ok());

  // The next flush dies: the buffered suffix is in an unknown on-disk state,
  // so the log freezes — later appends, flushes, and Close() all refuse.
  ASSERT_TRUE((*log)->Append(TxnRecord(2)).ok());
  failpoint::Activate("command_log.flush", failpoint::Action::kCrash);
  Status st = (*log)->Flush();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE((*log)->last_error().ok());
  EXPECT_FALSE((*log)->Append(TxnRecord(3)).ok());
  EXPECT_FALSE((*log)->Flush().ok());
  (void)(*log)->Close();
  failpoint::ResetAll();

  // Only the acked prefix survives; the file is cleanly readable.
  Result<std::vector<LogRecord>> records = CommandLog::ReadAll(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], TxnRecord(1));
}

TEST_F(FailpointGuard, CommandLogAppendErrorIsNotSticky) {
  std::string path = TempPath("append_err.log");
  CommandLog::Options opts;
  opts.path = path;
  opts.sync = false;
  Result<std::unique_ptr<CommandLog>> log = CommandLog::Open(opts);
  ASSERT_TRUE(log.ok());

  // A failed append never buffered anything, so nothing on disk is in
  // doubt: the log stays healthy and the next append succeeds.
  failpoint::Activate("command_log.append", failpoint::Action::kError);
  EXPECT_FALSE((*log)->Append(TxnRecord(1)).ok());
  EXPECT_TRUE((*log)->last_error().ok());
  EXPECT_TRUE((*log)->Append(TxnRecord(2)).ok());
  ASSERT_TRUE((*log)->Close().ok());

  Result<std::vector<LogRecord>> records = CommandLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], TxnRecord(2));
}

TEST_F(FailpointGuard, TornFlushLeavesTailReadTolerantRecovers) {
  std::string path = TempPath("torn.log");
  CommandLog::Options opts;
  opts.path = path;
  opts.group_size = 100;
  opts.sync = false;
  Result<std::unique_ptr<CommandLog>> log = CommandLog::Open(opts);
  ASSERT_TRUE(log.ok());

  ASSERT_TRUE((*log)->Append(TxnRecord(1)).ok());
  ASSERT_TRUE((*log)->Append(TxnRecord(2)).ok());
  ASSERT_TRUE((*log)->Flush().ok());

  // The crash-mid-flush case §4.4 group commit must survive: half the
  // pending buffer reaches disk, then the process "dies". Record 3 dwarfs
  // record 4 so the byte midpoint falls inside record 3's frame — a torn
  // frame, not a truncation at a frame boundary.
  LogRecord big = TxnRecord(3);
  big.proc = std::string(200, 'x');
  ASSERT_TRUE((*log)->Append(big).ok());
  ASSERT_TRUE((*log)->Append(TxnRecord(4)).ok());
  failpoint::Activate("command_log.flush", failpoint::Action::kTornWrite);
  EXPECT_FALSE((*log)->Flush().ok());
  EXPECT_FALSE((*log)->last_error().ok());  // frozen after the tear
  (void)(*log)->Close();
  failpoint::ResetAll();

  // Strict read refuses the torn file; tolerant read returns the acked
  // prefix and flags the tail.
  EXPECT_TRUE(CommandLog::ReadAll(path).status().code() == StatusCode::kCorruption);
  Result<CommandLog::TolerantRead> tolerant = CommandLog::ReadTolerant(path);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_TRUE(tolerant->torn_tail);
  ASSERT_EQ(tolerant->records.size(), 2u);
  EXPECT_EQ(tolerant->records[0], TxnRecord(1));
  EXPECT_EQ(tolerant->records[1], TxnRecord(2));
}

// ---- Kill-at-every-site crash matrix over the voter cluster ----

/// How a scenario drives the armed site to fire.
enum class FireVia {
  kVotes,       // single-partition traffic (command-log paths)
  kTransfer,    // cross-partition 2PC (decision-log path)
  kCheckpoint,  // a Checkpoint() call (snapshot/manifest/barrier paths)
};

/// One full torture scenario: ingest committed work, checkpoint cleanly,
/// ingest more, arm `site`, drive it to fire, simulate the kill, then prove
/// two *composed* recoveries converge to exactly the acked-committed cut:
///   gen-1 dies at the fault -> gen-2 recovers, ingests, dies (no manual
///   checkpoint) -> gen-3 recovers and must equal gen-2's acked state.
void RunCrashScenario(const std::string& tag, const std::string& site,
                      failpoint::Action action, FireVia fire) {
  std::string ckpt_dir = MakeDir(tag + "_ckpt");
  std::string log_dir = MakeDir(tag + "_logs");
  VoterClusterConfig config;
  config.num_contestants = 8;
  config.initial_votes = 100;

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_sync = false;

  int64_t committed = 0;  // votes the client saw acked before each kill
  {
    Cluster::Options live_opts = opts;
    live_opts.log_dir = log_dir;
    Cluster cluster(live_opts);
    VoterClusterApp app(&cluster, config);
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();

    for (int i = 0; i < 16; ++i) {
      if (app.Vote(i % config.num_contestants).committed()) ++committed;
    }
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());

    // Post-checkpoint tail, including a cross-partition transfer, so replay
    // must compose snapshot + log + decision log.
    for (int i = 0; i < 16; ++i) {
      if (app.Vote(i % config.num_contestants).committed()) ++committed;
    }
    int64_t from = 0, to = 0;
    if (app.PickCrossPartitionPair(&from, &to)) {
      app.Transfer(from, to, 5);
    }
    cluster.WaitIdle();

    failpoint::Activate(site, action);
    switch (fire) {
      case FireVia::kVotes:
        // The vote that hits the armed site aborts (not acked, not
        // counted); votes owned by the unpoisoned partition still commit.
        for (int i = 0; i < 24; ++i) {
          if (app.Vote(i % config.num_contestants).committed()) ++committed;
        }
        break;
      case FireVia::kTransfer:
        // The decision-log fault aborts the multi-partition transfer;
        // single-partition votes are unaffected.
        if (app.PickCrossPartitionPair(&from, &to)) {
          app.Transfer(from, to, 3);
        }
        for (int i = 0; i < 8; ++i) {
          if (app.Vote(i % config.num_contestants).committed()) ++committed;
        }
        break;
      case FireVia::kCheckpoint: {
        Status st = cluster.Checkpoint(ckpt_dir);
        EXPECT_FALSE(st.ok()) << site << ": checkpoint should have died";
        break;
      }
    }
    EXPECT_GE(failpoint::Hits(site), 1u) << site << " never evaluated";
    cluster.Stop();
    // The simulated process is dead: only what reached ckpt_dir/log_dir
    // before the fault instant survives the scope.
  }
  failpoint::ResetAll();

  // Generation 2: recover, verify the exact acked cut, ingest more (the
  // re-armed fresh logs must capture it), die again with NO checkpoint.
  {
    Cluster recovered(opts);
    VoterClusterApp app(&recovered, config);
    ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
    Status st = recovered.Recover(ckpt_dir, log_dir);
    ASSERT_TRUE(st.ok()) << site << ": " << st.ToString();
    ASSERT_TRUE(app.CheckInvariant().ok()) << site;
    Result<int64_t> txns = app.TotalVoteTxns();
    ASSERT_TRUE(txns.ok());
    EXPECT_EQ(*txns, committed) << site << ": recovered cut != acked commits";

    recovered.Start();
    for (int i = 0; i < 10; ++i) {
      if (app.Vote(i % config.num_contestants).committed()) ++committed;
    }
    recovered.WaitIdle();
    recovered.Stop();
  }

  // Generation 3: recovery composes — the second kill recovers too, and
  // still equals the acked total across both generations.
  {
    Cluster recovered(opts);
    VoterClusterApp app(&recovered, config);
    ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
    Status st = recovered.Recover(ckpt_dir, log_dir);
    ASSERT_TRUE(st.ok()) << site << ": " << st.ToString();
    ASSERT_TRUE(app.CheckInvariant().ok()) << site;
    Result<int64_t> txns = app.TotalVoteTxns();
    ASSERT_TRUE(txns.ok());
    EXPECT_EQ(*txns, committed) << site << ": gen-3 cut != gen-2 acked";
  }
}

TEST_F(FailpointGuard, CrashAtCommandLogAppend) {
  RunCrashScenario("cl_append", "command_log.append",
                   failpoint::Action::kCrash, FireVia::kVotes);
}

TEST_F(FailpointGuard, CrashAtCommandLogFlush) {
  RunCrashScenario("cl_flush", "command_log.flush", failpoint::Action::kCrash,
                   FireVia::kVotes);
}

TEST_F(FailpointGuard, TornWriteAtCommandLogFlush) {
  RunCrashScenario("cl_torn", "command_log.flush",
                   failpoint::Action::kTornWrite, FireVia::kVotes);
}

TEST_F(FailpointGuard, CrashAtDecisionLogAppend) {
  RunCrashScenario("dl_append", "decision_log.append",
                   failpoint::Action::kCrash, FireVia::kTransfer);
}

TEST_F(FailpointGuard, CrashAtSnapshotWrite) {
  RunCrashScenario("snap_write", "snapshot.write", failpoint::Action::kCrash,
                   FireVia::kCheckpoint);
}

TEST_F(FailpointGuard, TornWriteAtSnapshotWrite) {
  RunCrashScenario("snap_torn", "snapshot.write",
                   failpoint::Action::kTornWrite, FireVia::kCheckpoint);
}

TEST_F(FailpointGuard, CrashAtSnapshotRename) {
  RunCrashScenario("snap_ren", "snapshot.rename", failpoint::Action::kCrash,
                   FireVia::kCheckpoint);
}

TEST_F(FailpointGuard, CrashAtManifestWrite) {
  RunCrashScenario("man_write", "manifest.write", failpoint::Action::kCrash,
                   FireVia::kCheckpoint);
}

TEST_F(FailpointGuard, CrashAtManifestRename) {
  RunCrashScenario("man_ren", "manifest.rename", failpoint::Action::kCrash,
                   FireVia::kCheckpoint);
}

TEST_F(FailpointGuard, CrashAtCheckpointBarrier) {
  RunCrashScenario("barrier", "checkpoint.barrier", failpoint::Action::kCrash,
                   FireVia::kCheckpoint);
}

TEST_F(FailpointGuard, CrashAfterManifestCommitBeforeRotation) {
  // The nastiest window: the new manifest is durable but the logs were
  // never rotated. Replay from the new cut sees an empty tail — which is
  // correct, because nothing could commit while the barrier held.
  RunCrashScenario("after_man", "checkpoint.after_manifest",
                   failpoint::Action::kCrash, FireVia::kCheckpoint);
}

// ---- Delta snapshots ----

DeploymentPlan HotColdPlan() {
  DeploymentPlan plan;
  plan.CreateTable("hot", KeyValSchema())
      .CreateTable("cold", KeyValSchema())
      .RegisterProcedure(
          "bump", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) -> Status {
            SSTORE_ASSIGN_OR_RETURN(Table * hot, ctx.table("hot"));
            SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                    ctx.exec().Insert(hot, ctx.params()));
            (void)rid;
            return Status::OK();
          }));
  for (int i = 0; i < 4; ++i) plan.InsertRow("cold", KeyVal(i, i * 10));
  return plan;
}

TEST_F(FailpointGuard, DeltaSnapshotSkipsUnchangedTablesAndRecovers) {
  std::string dir = MakeDir("delta");
  Cluster::Options opts;
  opts.num_partitions = 1;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(HotColdPlan()).ok());
  cluster.Start();

  // First checkpoint of this directory: everything is written full.
  CheckpointReport r1;
  ASSERT_TRUE(cluster.Checkpoint(dir, &r1).ok());
  EXPECT_EQ(r1.tables_full, 2u);
  EXPECT_EQ(r1.tables_delta, 0u);
  EXPECT_GT(r1.snapshot_bytes, 0u);

  // Mutate only "hot": the next cut writes "cold" as a reference to the
  // base checkpoint instead of copying its rows again.
  EXPECT_TRUE(
      cluster.ExecuteSync("bump", KeyVal(100, 1), Value::BigInt(0)).committed());
  cluster.WaitIdle();
  CheckpointReport r2;
  ASSERT_TRUE(cluster.Checkpoint(dir, &r2).ok());
  EXPECT_EQ(r2.tables_full, 1u);
  EXPECT_EQ(r2.tables_delta, 1u);

  // Nothing changed since: the third cut is all references.
  CheckpointReport r3;
  ASSERT_TRUE(cluster.Checkpoint(dir, &r3).ok());
  EXPECT_EQ(r3.tables_full, 0u);
  EXPECT_EQ(r3.tables_delta, 2u);
  EXPECT_LT(r3.snapshot_bytes, r1.snapshot_bytes);
  cluster.Stop();

  // Recovery resolves the reference chain back to the base epoch's bytes.
  Cluster recovered(opts);
  ASSERT_TRUE(recovered.Deploy(HotColdPlan()).ok());
  Status st = recovered.Recover(dir, "");
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<Tuple> cold = TableRows(recovered.store(0), "cold");
  ASSERT_EQ(cold.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(cold[i], KeyVal(i, i * 10));
  std::vector<Tuple> hot = TableRows(recovered.store(0), "hot");
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0], KeyVal(100, 1));

  // A delta snapshot is not self-contained: restoring it without a base
  // resolver must refuse rather than silently produce empty tables.
  SStore ref_store;
  ASSERT_TRUE(HotColdPlan().ApplyTo(ref_store).ok());
  Status bare = SnapshotManager::RestoreSnapshot(
      dir + "/ckpt-3-partition-0.snap", &ref_store.catalog());
  EXPECT_FALSE(bare.ok());
}

// ---- Composed recovery of a placed topology (exactly-once channels) ----

TopologyBuilder TwoStageBuilder() {
  TopologyBuilder topo("dur_pipe");
  topo.DefineStream("sA", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .RegisterProcedure(
          "ingest", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            return ctx.EmitToStream("sA", {ctx.params()});
          }))
      .RegisterProcedure(
          "apply", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>(
                [bound](ProcContext& ctx) -> Status {
                  SSTORE_ASSIGN_OR_RETURN(
                      std::vector<Tuple> rows,
                      bound->streams().BatchContents("sA", ctx.batch_id()));
                  SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
                  for (const Tuple& row : rows) {
                    SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                            ctx.exec().Insert(sink, row));
                    (void)rid;
                  }
                  return Status::OK();
                });
          });
  WorkflowNode ingest;
  ingest.proc = "ingest";
  ingest.kind = SpKind::kBorder;
  ingest.output_streams = {"sA"};
  WorkflowNode apply;
  apply.proc = "apply";
  apply.kind = SpKind::kInterior;
  apply.input_streams = {"sA"};
  topo.AddStage(std::move(ingest), Placement::Pinned(0))
      .AddStage(std::move(apply), Placement::Pinned(1));
  return topo;
}

TEST_F(FailpointGuard, PlacedChannelStaysExactlyOnceAcrossTwoKills) {
  std::string ckpt_dir = MakeDir("pipe_ckpt");
  std::string log_dir = MakeDir("pipe_logs");
  Result<Topology> topo = TwoStageBuilder().Build();
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.log_sync = false;

  // Generation 1: checkpoint mid-stream, keep ingesting, die.
  {
    Cluster::Options live_opts = opts;
    live_opts.log_dir = log_dir;
    Cluster cluster(live_opts);
    ASSERT_TRUE(cluster.Deploy(*topo).ok());
    cluster.Start();
    StreamInjector inject(&cluster.partition(0), "ingest");
    for (int i = 0; i < 20; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    for (int i = 20; i < 40; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    cluster.Stop();
  }

  // Generation 2: recover (re-arms fresh logs), ingest a third wave across
  // the placed channel, die again WITHOUT any manual checkpoint.
  {
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.Deploy(*topo).ok());
    Status st = cluster.Recover(ckpt_dir, log_dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    cluster.Start();
    StreamInjector inject(&cluster.partition(0), "ingest");
    // The source resumes past its durable offset: re-using ids 1..20 would
    // be (correctly) dropped by the recovered channel cursor as duplicates.
    inject.ResumeBatchIdsAt(41);
    for (int i = 40; i < 60; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    cluster.Stop();
  }

  // Generation 3: the composed cut must hold every batch exactly once —
  // no channel delivery lost at either kill, none applied twice.
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(*topo).ok());
  Status st = cluster.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  cluster.Start();
  cluster.WaitIdle();
  cluster.Stop();

  std::vector<Tuple> sink = TableRows(cluster.store(1), "sink");
  ASSERT_EQ(sink.size(), 60u);
  std::map<int64_t, int> seen;
  for (const Tuple& row : sink) ++seen[row[0].as_int64()];
  for (int64_t i = 0; i < 60; ++i) {
    EXPECT_EQ(seen[i], 1) << "key " << i << " delivered " << seen[i]
                          << " times";
  }
}

// Checkpointing a *recovered* cluster must rotate the re-armed epoch logs,
// not the dead generation's names (composability of rotation state).
TEST_F(FailpointGuard, CheckpointAfterRecoverRotatesFreshEpochLogs) {
  std::string ckpt_dir = MakeDir("rot_ckpt");
  std::string log_dir = MakeDir("rot_logs");
  VoterClusterConfig config;
  config.num_contestants = 4;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_sync = false;

  {
    Cluster::Options live_opts = opts;
    live_opts.log_dir = log_dir;
    Cluster cluster(live_opts);
    VoterClusterApp app(&cluster, config);
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    for (int i = 0; i < 8; ++i) app.Vote(i % 4);
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());  // epoch 1
    for (int i = 0; i < 8; ++i) app.Vote(i % 4);
    cluster.WaitIdle();
    cluster.Stop();
  }

  Cluster recovered(opts);
  VoterClusterApp app(&recovered, config);
  ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
  ASSERT_TRUE(recovered.Recover(ckpt_dir, log_dir).ok());
  // Recovery re-armed a fresh epoch (id 2) and deleted the replayed files.
  EXPECT_TRUE(FileExists(log_dir + "/partition-0.e2.log"));
  EXPECT_TRUE(FileExists(log_dir + "/coord-decisions.e2.log"));
  EXPECT_FALSE(FileExists(log_dir + "/partition-0.e1.log"));
  EXPECT_FALSE(FileExists(log_dir + "/coord-decisions.e1.log"));

  recovered.Start();
  for (int i = 0; i < 8; ++i) app.Vote(i % 4);
  ASSERT_TRUE(recovered.Checkpoint(ckpt_dir).ok());  // epoch 3
  EXPECT_TRUE(FileExists(log_dir + "/partition-0.e3.log"));
  EXPECT_FALSE(FileExists(log_dir + "/partition-0.e2.log"));
  EXPECT_TRUE(app.CheckInvariant().ok());
  recovered.Stop();
}

// Obs-layer accounting across the durability machinery: LogStats totals are
// lifetime-cumulative — command-log epoch rotation must neither reset nor
// double-count them (identical ingest waves before and after a rotation, and
// after a Recover, must account identically) — and replayed channel
// deliveries land in redeliveries_suppressed, never as double applications.
TEST_F(FailpointGuard, ObsCountersSurviveRotationAndRecoverNoDoubleCount) {
  std::string ckpt_dir = MakeDir("obs_ckpt");
  std::string log_dir = MakeDir("obs_logs");
  Result<Topology> topo = TwoStageBuilder().Build();
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.log_sync = false;

  uint64_t wave_records = 0;  // log records one 20-inject wave accounts for

  // Generation 1: wave 1, rotate the log epoch, wave 2, die.
  {
    Cluster::Options live_opts = opts;
    live_opts.log_dir = log_dir;
    Cluster cluster(live_opts);
    ASSERT_TRUE(cluster.Deploy(*topo).ok());
    cluster.Start();
    StreamInjector inject(&cluster.partition(0), "ingest");
    for (int i = 0; i < 20; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    ClusterStats wave1 = cluster.GatherStats();
    ASSERT_GT(wave1.log.records_appended, 0u);
    wave_records = wave1.log.records_appended;

    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());  // rotates the epoch
    ClusterStats rotated = cluster.GatherStats();
    EXPECT_GE(rotated.log.records_appended, wave1.log.records_appended)
        << "epoch rotation reset the retired-record totals";

    for (int i = 20; i < 40; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    ClusterStats wave2 = cluster.GatherStats();
    // The same 20-inject wave must account the same on both sides of the
    // rotation — more would mean carried-over records were counted twice.
    EXPECT_EQ(wave2.log.records_appended - rotated.log.records_appended,
              wave_records);

    // ResetStats sweeps txn/channel/registry counters but deliberately NOT
    // LogStats (lifetime-cumulative: the checkpointer's bytes trigger and
    // epoch accounting depend on monotonic totals — see cluster.h).
    cluster.ResetStats();
    ClusterStats reset = cluster.GatherStats();
    EXPECT_EQ(reset.log.records_appended, wave2.log.records_appended);
    EXPECT_EQ(reset.txn.committed, 0u);

    cluster.Stop();
  }

  // Generation 2: recover. The replay re-fires wave-2 channel forwards; the
  // recovered cursor must suppress every one (already applied downstream),
  // and a fresh wave must account exactly like wave 1 did.
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(*topo).ok());
  Status st = cluster.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  cluster.Start();
  cluster.WaitIdle();

  MetricsSnapshot replayed = cluster.metrics().Snapshot();
  EXPECT_GE(replayed.Value("sstore_channel_redeliveries_suppressed_total"),
            1.0)
      << "replay should have re-offered already-applied batches";

  ClusterStats recovered_base = cluster.GatherStats();
  StreamInjector inject(&cluster.partition(0), "ingest");
  inject.ResumeBatchIdsAt(41);
  for (int i = 40; i < 60; ++i) inject.InjectAsync(KeyVal(i, i));
  cluster.WaitIdle();
  ClusterStats wave3 = cluster.GatherStats();
  EXPECT_EQ(wave3.log.records_appended - recovered_base.log.records_appended,
            wave_records)
      << "a recovered cluster double-counts (or drops) log records";
  cluster.Stop();

  // The ground truth for "no double-counting": every key exactly once.
  std::vector<Tuple> sink = TableRows(cluster.store(1), "sink");
  ASSERT_EQ(sink.size(), 60u);
  std::map<int64_t, int> seen;
  for (const Tuple& row : sink) ++seen[row[0].as_int64()];
  for (int64_t i = 0; i < 60; ++i) {
    EXPECT_EQ(seen[i], 1) << "key " << i << " applied " << seen[i] << " times";
  }
}

// ---- TryCheckpoint / background checkpointer ----

TEST_F(FailpointGuard, TryCheckpointIsUnavailableWhileCoordinatorQuiesced) {
  std::string dir = MakeDir("tryckpt");
  VoterClusterConfig config;
  config.num_contestants = 4;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();

  // Someone else holds the coordinator gate: a background checkpoint must
  // defer (Unavailable), never block or fail hard.
  cluster.coordinator().QuiesceBegin();
  Status busy = cluster.TryCheckpoint(dir, nullptr, /*quiesce_timeout_ms=*/5);
  EXPECT_TRUE(busy.IsUnavailable()) << busy.ToString();
  cluster.coordinator().QuiesceEnd();

  CheckpointReport report;
  Status st = cluster.TryCheckpoint(dir, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(report.checkpoint_id, 1u);
  cluster.Stop();
}

TEST_F(FailpointGuard, CheckpointerCadenceKeepsClusterRecoverable) {
  std::string ckpt_dir = MakeDir("cadence_ckpt");
  std::string log_dir = MakeDir("cadence_logs");
  VoterClusterConfig config;
  config.num_contestants = 8;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_sync = false;
  int64_t committed = 0;
  {
    Cluster::Options live_opts = opts;
    live_opts.log_dir = log_dir;
    Cluster cluster(live_opts);
    VoterClusterApp app(&cluster, config);
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();

    Checkpointer::Options copts;
    copts.dir = ckpt_dir;
    copts.interval_ms = 5;
    copts.poll_ms = 1;
    ASSERT_TRUE(cluster.StartCheckpointer(copts).ok());
    EXPECT_TRUE(cluster.StartCheckpointer(copts).code() == StatusCode::kAlreadyExists);

    // Ingest THROUGH the self-triggered checkpoints: the barrier pauses,
    // it never rejects — every vote here is acked durable.
    for (int i = 0; i < 300; ++i) {
      if (app.Vote(i % config.num_contestants).committed()) ++committed;
    }
    ASSERT_TRUE(cluster.checkpointer()->WaitForCompletions(2, 20000));
    Checkpointer::Stats cs = cluster.checkpointer()->stats();
    EXPECT_GE(cs.completed, 2u);
    EXPECT_GE(cs.triggered_cadence, 1u);
    EXPECT_GT(cs.last_checkpoint_id, 0u);
    EXPECT_TRUE(cluster.checkpointer()->last_error().ok())
        << cluster.checkpointer()->last_error().ToString();
    cluster.Stop();  // stops the checkpointer first, then the workers
    EXPECT_FALSE(cluster.checkpointer()->running());
  }
  ASSERT_GT(committed, 0);

  Cluster recovered(opts);
  VoterClusterApp app(&recovered, config);
  ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(app.CheckInvariant().ok());
  Result<int64_t> txns = app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, committed);
}

TEST_F(FailpointGuard, CheckpointerLogBytesThresholdTriggers) {
  std::string ckpt_dir = MakeDir("bytes_ckpt");
  std::string log_dir = MakeDir("bytes_logs");
  VoterClusterConfig config;
  config.num_contestants = 4;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_dir = log_dir;
  opts.log_sync = false;
  Cluster cluster(opts);
  VoterClusterApp app(&cluster, config);
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();

  Checkpointer::Options copts;
  copts.dir = ckpt_dir;
  copts.interval_ms = 0;  // cadence off: only the bytes trigger may fire
  copts.log_bytes_threshold = 256;
  copts.poll_ms = 1;
  ASSERT_TRUE(cluster.StartCheckpointer(copts).ok());

  for (int i = 0; i < 50; ++i) app.Vote(i % config.num_contestants);
  ASSERT_TRUE(cluster.checkpointer()->WaitForCompletions(1, 20000));
  Checkpointer::Stats cs = cluster.checkpointer()->stats();
  EXPECT_GE(cs.triggered_bytes, 1u);
  EXPECT_EQ(cs.triggered_cadence, 0u);
  cluster.Stop();
}

TEST_F(FailpointGuard, CheckpointerDefersWithBackoffWhileCoordinatorBusy) {
  std::string ckpt_dir = MakeDir("busy_ckpt");
  VoterClusterConfig config;
  config.num_contestants = 4;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();

  // Hold the coordinator so every attempt defers; the trigger stays
  // latched (deferred, not forgotten) and retries with backoff.
  cluster.coordinator().QuiesceBegin();
  Checkpointer::Options copts;
  copts.dir = ckpt_dir;
  copts.interval_ms = 2;
  copts.poll_ms = 1;
  copts.quiesce_timeout_ms = 2;
  copts.initial_backoff_ms = 1;
  copts.max_backoff_ms = 10;
  ASSERT_TRUE(cluster.StartCheckpointer(copts).ok());

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.checkpointer()->stats().busy_deferred < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Checkpointer::Stats held = cluster.checkpointer()->stats();
  EXPECT_GE(held.busy_deferred, 2u);
  EXPECT_EQ(held.completed, 0u);
  EXPECT_EQ(held.failed, 0u);  // Unavailable is deferral, not failure

  // Release the gate: the latched trigger completes without a new cadence
  // tick being required.
  cluster.coordinator().QuiesceEnd();
  EXPECT_TRUE(cluster.checkpointer()->WaitForCompletions(1, 20000));
  EXPECT_TRUE(cluster.checkpointer()->last_error().ok());
  cluster.Stop();
}

TEST_F(FailpointGuard, StartCheckpointerValidatesOptions) {
  Cluster cluster(1);
  ASSERT_TRUE(cluster.Deploy(DeploymentPlan()).ok());
  Checkpointer::Options no_dir;
  no_dir.interval_ms = 10;
  EXPECT_TRUE(cluster.StartCheckpointer(no_dir).code() == StatusCode::kInvalidArgument);
  Checkpointer::Options no_trigger;
  no_trigger.dir = MakeDir("novalid");
  EXPECT_TRUE(cluster.StartCheckpointer(no_trigger).code() == StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.checkpointer(), nullptr);
}

// ---- Wire server sheds kBusy while the barrier holds the cluster ----

TEST_F(FailpointGuard, WireServerShedsBusyWhileCheckpointGateClosed) {
  VoterClusterConfig config;
  config.num_contestants = 8;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster cluster(opts);
  VoterClusterApp app(&cluster, config);
  ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
  cluster.Start();
  WireServer server(&cluster, WireServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<WireClient>> client =
      WireClient::Connect({"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Gate closed (as during a barrier pause): requests are shed with kBusy
  // — an explicit retry signal — instead of queueing behind parked workers.
  cluster.SetCheckpointGateClosedForTest(true);
  WireResult shed = (*client)->Call("vc_vote", {Value::BigInt(1)},
                                    Value::BigInt(1));
  EXPECT_TRUE(shed.transport.ok()) << shed.transport.ToString();
  EXPECT_TRUE(shed.busy);

  // Gate open again: the same request commits.
  cluster.SetCheckpointGateClosedForTest(false);
  WireResult fine = (*client)->Call("vc_vote", {Value::BigInt(1)},
                                    Value::BigInt(1));
  EXPECT_TRUE(fine.committed()) << fine.transport.ToString();

  WireServer::Stats stats = server.stats();
  EXPECT_GE(stats.busy_during_checkpoint, 1u);
  EXPECT_GE(stats.busy_shed, stats.busy_during_checkpoint);
  (*client)->Close();
  server.Stop();
  cluster.Stop();
}

}  // namespace
}  // namespace sstore
