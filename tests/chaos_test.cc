// Full-stack fault injection (ISSUE 10). Two halves:
//
//  1. Deterministic per-site coverage: every new serving-layer and channel
//     failpoint site gets a crash-recover test that arms exactly that site,
//     drives it to fire, and proves the invariant it threatens (acked
//     commits survive recovery, channels stay exactly-once, the server
//     stays up). The rebalance sites get the same treatment in
//     rebalance_test.cc's kill matrix; one representative lives here too.
//
//  2. The seeded randomized harness (chaos_harness.{h,cc}): N schedules per
//     run, each derived from a seed. A failure prints the seed and the
//     exact failpoint spec; SSTORE_CHAOS_SEED=<s> replays it.
//
// Run in isolation with `ctest -L chaos`.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chaos_harness.h"
#include "cluster/cluster.h"
#include "cluster/cluster_injector.h"
#include "common/failpoint.h"
#include "server/client.h"
#include "server/wire_server.h"
#include "streaming/injector.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ResetAll(); }
  void TearDown() override { failpoint::ResetAll(); }
};

// ---- Deterministic wire-site coverage ----

/// Shared fixture logic for the wire sites: voter cluster + server + one
/// client hammering votes, then a simulated crash and a recovery that must
/// hold at least every acked commit.
struct WireRig {
  explicit WireRig(const std::string& tag) {
    static const std::string pid = std::to_string(::getpid());
    const char* base = std::getenv("TMPDIR");
    std::string root = std::string(base != nullptr ? base : "/tmp");
    ckpt_dir = root + "/sstore_chaos_det_" + pid + "_" + tag + "_ckpt";
    log_dir = root + "/sstore_chaos_det_" + pid + "_" + tag + "_logs";
    ::system(("mkdir -p " + ckpt_dir + " " + log_dir).c_str());
    config.num_contestants = 8;
    config.initial_votes = 1000;
    opts.num_partitions = 2;
    opts.routing = PartitionMap::Mode::kModulo;
    opts.log_sync = false;
  }

  /// Deploy + start + baseline checkpoint + wire server. Call before arming.
  void Up() {
    Cluster::Options live = opts;
    live.log_dir = log_dir;
    cluster = std::make_unique<Cluster>(live);
    app = std::make_unique<VoterClusterApp>(cluster.get(), config);
    ASSERT_TRUE(cluster->Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster->Start();
    ASSERT_TRUE(cluster->Checkpoint(ckpt_dir).ok());
    WireServer::Options sopts;
    sopts.drain_timeout_ms = 500;
    server = std::make_unique<WireServer>(cluster.get(), sopts);
    ASSERT_TRUE(server->Start().ok());
  }

  std::unique_ptr<WireClient> Connect() {
    Result<std::unique_ptr<WireClient>> client =
        WireClient::Connect({"127.0.0.1", server->port()});
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  /// Pipelined votes; returns how many the client saw committed.
  int64_t Votes(WireClient& client, int n) {
    std::vector<WireFuturePtr> futures;
    for (int i = 0; i < n; ++i) {
      int64_t k = i % config.num_contestants;
      futures.push_back(
          client.SubmitAsync("vc_vote", {Value::BigInt(k)}, Value::BigInt(k)));
    }
    client.Flush().ok();
    int64_t acked = 0;
    for (WireFuturePtr& f : futures) {
      if (f->Wait().committed()) ++acked;
    }
    return acked;
  }

  /// Simulated crash (drop live objects) then recover and verify the cut.
  void CrashAndVerify(int64_t acked) {
    server->Stop();
    cluster->Stop();
    failpoint::ResetAll();
    Cluster recovered(opts);
    VoterClusterApp rapp(&recovered, config);
    ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
    Status st = recovered.Recover(ckpt_dir, log_dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(rapp.CheckInvariant().ok());
    Result<int64_t> txns = rapp.TotalVoteTxns();
    ASSERT_TRUE(txns.ok());
    // An ack can be lost after the commit (torn connection), never the
    // reverse: client-observed commits ⊆ durable state.
    EXPECT_GE(*txns, acked);
  }

  std::string ckpt_dir, log_dir;
  VoterClusterConfig config;
  Cluster::Options opts;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<VoterClusterApp> app;
  std::unique_ptr<WireServer> server;
};

TEST_F(ChaosTest, WireAcceptFaultDropsOneConnectionServerKeepsServing) {
  WireRig rig("accept");
  rig.Up();
  failpoint::Activate("wire.accept", failpoint::Action::kError);

  // First connection is accepted then immediately dropped by the fault:
  // the TCP handshake succeeded (listen backlog), but the first request
  // can only fail.
  std::unique_ptr<WireClient> dropped = rig.Connect();
  ASSERT_NE(dropped, nullptr);
  EXPECT_FALSE(dropped->Ping().ok());
  dropped->Close();

  // The fault fired once; the next connection serves normally.
  std::unique_ptr<WireClient> fine = rig.Connect();
  ASSERT_NE(fine, nullptr);
  EXPECT_TRUE(fine->Ping().ok());
  int64_t acked = rig.Votes(*fine, 8);
  EXPECT_EQ(acked, 8);
  fine->Close();
  rig.CrashAndVerify(acked);
}

TEST_F(ChaosTest, WireShortReadsReassemblePipelinedFrames) {
  WireRig rig("rdshort");
  rig.Up();
  // EVERY server read returns one byte: frames straddle hundreds of reads.
  failpoint::Activate("wire.read.short", failpoint::Action::kError, 0, -1);
  std::unique_ptr<WireClient> client = rig.Connect();
  ASSERT_NE(client, nullptr);
  int64_t acked = rig.Votes(*client, 16);
  EXPECT_EQ(acked, 16);
  EXPECT_GE(failpoint::Hits("wire.read.short"), 16u);
  client->Close();
  rig.CrashAndVerify(acked);
}

TEST_F(ChaosTest, WireEagainStormDelaysButNeverDropsRequests) {
  WireRig rig("eagain");
  rig.Up();
  // The first 50 readable events yield nothing (simulated EAGAIN storm);
  // level-triggered epoll re-reports until the storm passes.
  failpoint::Activate("wire.read.eagain", failpoint::Action::kError, 0, 50);
  std::unique_ptr<WireClient> client = rig.Connect();
  ASSERT_NE(client, nullptr);
  int64_t acked = rig.Votes(*client, 8);
  EXPECT_EQ(acked, 8);
  client->Close();
  rig.CrashAndVerify(acked);
}

TEST_F(ChaosTest, WireMidStreamPeerResetLosesAcksNotCommits) {
  WireRig rig("reset");
  rig.Up();
  std::unique_ptr<WireClient> client = rig.Connect();
  ASSERT_NE(client, nullptr);
  int64_t acked = rig.Votes(*client, 8);  // healthy prefix
  EXPECT_EQ(acked, 8);

  // The next read on the connection tears it down server-side, exactly as
  // if the peer reset mid-frame. In-flight votes may have committed without
  // their acks escaping — the recovery check below is the invariant.
  failpoint::Activate("wire.read.reset", failpoint::Action::kError);
  std::vector<WireFuturePtr> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(client->SubmitAsync("vc_vote", {Value::BigInt(1)},
                                          Value::BigInt(1)));
  }
  client->Flush().ok();
  for (WireFuturePtr& f : futures) {
    if (f->Wait().committed()) ++acked;  // none should, but count honestly
  }
  client->Close();

  // Server survives the reset; a fresh connection still serves.
  std::unique_ptr<WireClient> again = rig.Connect();
  ASSERT_NE(again, nullptr);
  EXPECT_TRUE(again->Ping().ok());
  acked += rig.Votes(*again, 4);
  again->Close();
  rig.CrashAndVerify(acked);
}

TEST_F(ChaosTest, WireShortWritesDribbleResponsesOutIntact) {
  WireRig rig("wrshort");
  rig.Up();
  // Every flush pass sends one byte, forcing the EPOLLOUT partial-write
  // bookkeeping on every single response frame.
  failpoint::Activate("wire.write.short", failpoint::Action::kError, 0, -1);
  std::unique_ptr<WireClient> client = rig.Connect();
  ASSERT_NE(client, nullptr);
  int64_t acked = rig.Votes(*client, 12);
  EXPECT_EQ(acked, 12);
  EXPECT_GE(failpoint::Hits("wire.write.short"), 12u);
  client->Close();
  rig.CrashAndVerify(acked);
}

TEST_F(ChaosTest, WireClientShortFlushStillCommitsEverything) {
  WireRig rig("clshort");
  rig.Up();
  // The client's sends dribble one byte at a time; the server's frame
  // buffer must reassemble requests across arbitrarily many reads.
  failpoint::Activate("wire.client.flush.short", failpoint::Action::kError,
                      0, -1);
  std::unique_ptr<WireClient> client = rig.Connect();
  ASSERT_NE(client, nullptr);
  int64_t acked = rig.Votes(*client, 12);
  EXPECT_EQ(acked, 12);
  client->Close();
  rig.CrashAndVerify(acked);
}

TEST_F(ChaosTest, FetchStatsRetriesThroughBusySheds) {
  WireRig rig("stats");
  rig.Up();
  std::unique_ptr<WireClient> client = rig.Connect();
  ASSERT_NE(client, nullptr);

  // Three consecutive stats polls shed kBusy; FetchStats retries with
  // backoff and the fourth attempt answers.
  failpoint::Activate("wire.shed.stats", failpoint::Action::kError, 0, 3);
  Result<std::string> text = client->FetchStats();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("sstore_"), std::string::npos);
  EXPECT_GE(client->busy_received(), 3u);

  // A shed storm outlasting every retry surfaces as Unavailable — the
  // explicit "server alive but pausing" signal sstore_top tolerates.
  failpoint::Activate("wire.shed.stats", failpoint::Action::kError, 0, -1);
  Result<std::string> starved = client->FetchStats();
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsUnavailable())
      << starved.status().ToString();
  failpoint::Deactivate("wire.shed.stats");

  client->Close();
  rig.CrashAndVerify(0);
}

// ---- Deterministic channel-site coverage ----

/// One deterministic channel scenario through the harness' channel flavor:
/// pinned producer on partition 0, keyed consumer, log-backed. Keys are
/// injected synchronously with exactly `site` armed (skip hits pass, then
/// every hit fires), the cluster "crashes", and the final clean recovery
/// must show each committed key in the sink exactly once. A non-OK status
/// is a broken exactly-once invariant.
void RunChannelSiteScenario(const std::string& site, int keys, int skip = 0,
                            int generations = 2) {
  chaos::Schedule s;
  s.seed = 0;
  s.wire_flavor = false;
  s.generations = generations;
  s.requests_per_client = keys;
  s.picks.push_back({site, "error", skip, -1});
  Status st =
      chaos::RunSchedule(s, "det_" + site + "_s" + std::to_string(skip));
  EXPECT_TRUE(st.ok()) << site << ": " << st.ToString();
}

TEST_F(ChaosTest, ChannelForwardDropRedeliversAfterRecovery) {
  // Every forward dropped: nothing reaches the sink live, everything is
  // still pending at the crash, recovery re-forwards all of it exactly once.
  RunChannelSiteScenario("channel.forward.drop", 12);
}

TEST_F(ChaosTest, ChannelForwardDropOfMidStreamBatchIsRecovered) {
  // A skip lands the drops mid-stream: earlier batches deliver live, the
  // dropped tail arrives after recovery — order-independent exactly-once.
  RunChannelSiteScenario("channel.forward.drop", 12, /*skip=*/5);
}

TEST_F(ChaosTest, ChannelDuplicateForwardIsDeliveredOnce) {
  // Every forward submitted twice under the same encoded batch id; the
  // consumer cursor must commit the duplicate as a no-effect txn.
  RunChannelSiteScenario("channel.forward.duplicate", 12);
}

TEST_F(ChaosTest, ChannelAckStallLeavesBatchesPendingNotDuplicated) {
  // GC never runs: every delivered batch is still "pending" at the crash.
  // Recovery re-forwards them all; the consumer cursors suppress every
  // single one. The sink must not see a second copy.
  RunChannelSiteScenario("channel.ack.stall", 12);
}

TEST_F(ChaosTest, ChannelCrashBetweenDeliveryAndGcSuppressesRedelivery) {
  // The exactly-once window the site exists for: delivery txns committed,
  // raw batches not yet GC'd, process dies. Cursor suppression is the only
  // thing standing between recovery and double-delivery.
  RunChannelSiteScenario("channel.crash.before_gc", 12);
}

// ---- One deterministic rebalance-site representative ----
// (rebalance_test.cc's kill matrix covers all five sites; this keeps the
// chaos label self-contained.)

TEST_F(ChaosTest, RebalanceCrashBeforeManifestRecoversToOldMap) {
  static const std::string pid = std::to_string(::getpid());
  const char* base = std::getenv("TMPDIR");
  std::string root = std::string(base != nullptr ? base : "/tmp");
  std::string ckpt_dir = root + "/sstore_chaos_rebal_" + pid + "_ckpt";
  std::string log_dir = root + "/sstore_chaos_rebal_" + pid + "_logs";
  ::system(("mkdir -p " + ckpt_dir + " " + log_dir).c_str());

  VoterClusterConfig config;
  config.num_contestants = 8;
  config.initial_votes = 1000;
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_sync = false;

  int64_t acked = 0;
  {
    Cluster::Options live = opts;
    live.log_dir = log_dir;
    Cluster cluster(live);
    VoterClusterApp app(&cluster, config);
    ASSERT_TRUE(cluster.Deploy(chaos::ChaosVoterDeployment(config)).ok());
    cluster.Start();
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    for (int i = 0; i < 16; ++i) {
      if (app.Vote(i % config.num_contestants).committed()) ++acked;
    }
    // Keyed rows for the cutover to migrate (vc_contestants is replicated
    // on every partition by design, so it must never be in keyed_tables).
    ClusterInjector seeder(&cluster, "chaos_put");
    std::vector<Tuple> batch;
    for (int64_t k = 0; k < 24; ++k) {
      batch.push_back({Value::BigInt(k), Value::BigInt(k)});
    }
    seeder.InjectBatchAsync(std::move(batch)).Wait();
    cluster.WaitIdle();

    // Crash after the rows migrated but before the manifest rename: the
    // cutover never committed, so recovery lands on the old 2-partition map
    // with every acked vote intact.
    failpoint::Activate("rebalance.before_manifest",
                        failpoint::Action::kCrash);
    RebalancePlan plan;
    plan.kind = RebalancePlan::Kind::kSplit;
    plan.source = 0;
    plan.keyed_tables = {{"chaos_kv", 0}};
    plan.checkpoint_dir = ckpt_dir;
    Status st = cluster.Rebalance(plan);
    EXPECT_FALSE(st.ok()) << "rebalance should have died at the failpoint";
    EXPECT_GE(failpoint::Hits("rebalance.before_manifest"), 1u);
    cluster.Stop();
  }
  failpoint::ResetAll();

  Cluster recovered(opts);
  VoterClusterApp app(&recovered, config);
  ASSERT_TRUE(recovered.Deploy(chaos::ChaosVoterDeployment(config)).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(recovered.num_partitions(), 2u);
  EXPECT_EQ(recovered.partition_map().version(), 1u);
  ASSERT_TRUE(app.CheckInvariant().ok());
  Result<int64_t> txns = app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, acked);
}

// ---- The randomized schedule sweep ----

TEST_F(ChaosTest, SeededRandomizedSchedules) {
  uint64_t replay_seed = 0;
  if (chaos::EnvSeed(&replay_seed)) {
    // Replay mode: exactly the schedule the failing run printed.
    chaos::Schedule s = chaos::MakeSchedule(replay_seed);
    SCOPED_TRACE("replaying SSTORE_CHAOS_SEED=" +
                 std::to_string(replay_seed) + " " + s.Describe());
    Status st = chaos::RunSchedule(s, "replay");
    EXPECT_TRUE(st.ok()) << "seed=" << replay_seed << " spec=\"" << s.Spec()
                         << "\" : " << st.ToString();
    return;
  }

  const uint64_t base = chaos::EnvBaseSeed(0xC0FFEEull);
  const int count = chaos::EnvScheduleCount(20);
  int failures = 0;
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    chaos::Schedule s = chaos::MakeSchedule(seed);
    Status st = chaos::RunSchedule(s, "sweep" + std::to_string(i));
    if (!st.ok()) {
      ++failures;
      ADD_FAILURE() << "chaos schedule failed — replay with "
                    << "SSTORE_CHAOS_SEED=" << seed << "\n  schedule: "
                    << s.Describe() << "\n  error: " << st.ToString();
    }
  }
  EXPECT_EQ(failures, 0) << failures << "/" << count
                         << " schedules broke an invariant";
}

}  // namespace
}  // namespace sstore
