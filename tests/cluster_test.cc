#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cluster_injector.h"
#include "cluster/partition_map.h"
#include "query/expr.h"
#include "workloads/linear_road.h"

namespace sstore {
namespace {

Schema KeyValSchema() {
  return Schema({{"key", ValueType::kBigInt}, {"seq", ValueType::kBigInt}});
}

Tuple KeyVal(int64_t key, int64_t seq) {
  return {Value::BigInt(key), Value::BigInt(seq)};
}

/// Border "ingest" emits (key, seq) to stream "in"; interior "apply" copies
/// the batch into table "sink". The canonical keyed chain used below.
DeploymentPlan BuildKeyedChainPlan() {
  DeploymentPlan plan;
  plan.DefineStream("in", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .RegisterProcedure(
          "ingest", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            return ctx.EmitToStream("in", {ctx.params()});
          }))
      .RegisterProcedure(
          "apply", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>([bound](ProcContext& ctx) {
              SSTORE_ASSIGN_OR_RETURN(
                  std::vector<Tuple> rows,
                  bound->streams().BatchContents("in", ctx.batch_id()));
              SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
              for (const Tuple& row : rows) {
                SSTORE_ASSIGN_OR_RETURN(RowId rid, ctx.exec().Insert(sink, row));
                (void)rid;
              }
              return Status::OK();
            });
          });

  Workflow wf("keyed_chain");
  WorkflowNode n1, n2;
  n1.proc = "ingest";
  n1.kind = SpKind::kBorder;
  n1.output_streams = {"in"};
  n2.proc = "apply";
  n2.kind = SpKind::kInterior;
  n2.input_streams = {"in"};
  (void)wf.AddNode(n1);
  (void)wf.AddNode(n2);
  plan.DeployWorkflow(std::move(wf));
  return plan;
}

Workflow KeyedChainWorkflow() {
  Workflow wf("keyed_chain");
  WorkflowNode n1, n2;
  n1.proc = "ingest";
  n1.kind = SpKind::kBorder;
  n1.output_streams = {"in"};
  n2.proc = "apply";
  n2.kind = SpKind::kInterior;
  n2.input_streams = {"in"};
  (void)wf.AddNode(n1);
  (void)wf.AddNode(n2);
  return wf;
}

std::vector<Tuple> SinkRows(SStore& store) {
  Table* sink = *store.catalog().GetTable("sink");
  Executor exec;
  ScanSpec spec;
  spec.table = sink;
  return *exec.Scan(spec);
}

// ---- PartitionMap ----

TEST(PartitionMapTest, HashRoutingIsDeterministic) {
  PartitionMap a(4), b(4);
  for (int64_t k = 0; k < 1000; ++k) {
    Value key = Value::BigInt(k * 7919);
    size_t p = a.PartitionOf(key);
    EXPECT_LT(p, 4u);
    // Same key, same partition — across calls and across map instances.
    EXPECT_EQ(p, a.PartitionOf(key));
    EXPECT_EQ(p, b.PartitionOf(key));
  }
  EXPECT_EQ(a.PartitionOf(Value::String("road-7")),
            b.PartitionOf(Value::String("road-7")));
}

TEST(PartitionMapTest, HashRoutingCoversAllPartitions) {
  PartitionMap map(4);
  std::set<size_t> seen;
  for (int64_t k = 0; k < 1000; ++k) seen.insert(map.PartitionOf(Value::BigInt(k)));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PartitionMapTest, ModuloRoutingIsExactForIntegers) {
  PartitionMap map(4, PartitionMap::Mode::kModulo);
  for (int64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(map.PartitionOf(Value::BigInt(k)), static_cast<size_t>(k % 4));
    EXPECT_EQ(map.PartitionOfId(k), static_cast<size_t>(k % 4));
  }
  // Non-integer keys fall back to hashing but stay deterministic.
  size_t p = map.PartitionOf(Value::String("x"));
  EXPECT_LT(p, 4u);
  EXPECT_EQ(p, map.PartitionOf(Value::String("x")));
}

TEST(PartitionMapTest, ZeroPartitionsClampsToOne) {
  PartitionMap map(0);
  EXPECT_EQ(map.num_partitions(), 1u);
  EXPECT_EQ(map.PartitionOf(Value::BigInt(123)), 0u);
}

// ---- DeploymentPlan ----

TEST(DeploymentPlanTest, AppliesIdenticallyToFreshStores) {
  DeploymentPlan plan = BuildKeyedChainPlan();
  EXPECT_EQ(plan.steps().size(), 5u);
  EXPECT_FALSE(plan.Describe().empty());

  SStore a, b;
  ASSERT_TRUE(plan.ApplyTo(a).ok());
  ASSERT_TRUE(plan.ApplyTo(b).ok());
  for (SStore* store : {&a, &b}) {
    EXPECT_TRUE(store->streams().HasStream("in"));
    EXPECT_TRUE(store->catalog().HasTable("sink"));
    EXPECT_TRUE(store->partition().HasProcedure("ingest"));
    EXPECT_TRUE(store->partition().HasProcedure("apply"));
    EXPECT_EQ(store->triggers().ConsumersOf("in"),
              std::vector<std::string>{"apply"});
  }
}

TEST(DeploymentPlanTest, ReapplyToSameStoreFails) {
  DeploymentPlan plan = BuildKeyedChainPlan();
  SStore store;
  ASSERT_TRUE(plan.ApplyTo(store).ok());
  Status again = plan.ApplyTo(store);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
}

TEST(DeploymentPlanTest, FailingStepReportsItsDescription) {
  DeploymentPlan plan;
  plan.CreateIndex("no_such_table", "pk", {"x"}, true);
  SStore store;
  Status s = plan.ApplyTo(store);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no_such_table"), std::string::npos);
}

TEST(DeploymentPlanTest, NullProcedureFactoryRejected) {
  DeploymentPlan plan;
  plan.RegisterProcedure("ghost", SpKind::kBorder,
                         [](SStore&) -> std::shared_ptr<StoredProcedure> {
                           return nullptr;
                         });
  SStore store;
  EXPECT_EQ(plan.ApplyTo(store).code(), StatusCode::kInvalidArgument);
}

// ---- Cluster ----

TEST(ClusterTest, DeployPutsIdenticalWorkflowOnEveryPartition) {
  Cluster cluster(4);
  ASSERT_EQ(cluster.num_partitions(), 4u);
  ASSERT_TRUE(cluster.Deploy(BuildKeyedChainPlan()).ok());
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    SStore& store = cluster.store(p);
    EXPECT_EQ(store.partition().partition_id(), static_cast<int>(p));
    EXPECT_TRUE(store.streams().HasStream("in"));
    EXPECT_TRUE(store.catalog().HasTable("sink"));
    EXPECT_TRUE(store.partition().HasProcedure("ingest"));
    EXPECT_TRUE(store.partition().HasProcedure("apply"));
    EXPECT_EQ(store.triggers().ConsumersOf("in"),
              std::vector<std::string>{"apply"});
  }
}

TEST(ClusterTest, DeployFailureNamesThePartition) {
  Cluster cluster(2);
  DeploymentPlan bad;
  bad.CreateIndex("missing", "pk", {"x"}, true);
  Status s = cluster.Deploy(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("partition 0"), std::string::npos);
}

TEST(ClusterTest, ExecuteSyncRoutesToTheKeyOwner) {
  Cluster cluster(4);
  ASSERT_TRUE(cluster.Deploy(BuildKeyedChainPlan()).ok());
  cluster.Start();
  Value key = Value::BigInt(42);
  size_t owner = cluster.PartitionOf(key);
  TxnOutcome out = cluster.ExecuteSync("ingest", KeyVal(42, 0), key, 1);
  ASSERT_TRUE(out.committed());
  cluster.WaitIdle();
  cluster.Stop();
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    size_t expected = p == owner ? 1u : 0u;
    EXPECT_EQ(SinkRows(cluster.store(p)).size(), expected) << "partition " << p;
  }
}

TEST(ClusterTest, ExecuteOnAllScattersToEveryPartition) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.Deploy(BuildKeyedChainPlan()).ok());
  cluster.Start();
  std::vector<TxnOutcome> outs = cluster.ExecuteOnAll("ingest", KeyVal(0, 0));
  ASSERT_EQ(outs.size(), 3u);
  for (const TxnOutcome& out : outs) EXPECT_TRUE(out.committed());
  cluster.WaitIdle();
  cluster.Stop();
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(SinkRows(cluster.store(p)).size(), 1u);
  }
}

/// The acceptance scenario: a 4-partition cluster processes a keyed
/// workload; per-key ordering is preserved, every partition's commit
/// schedule satisfies the workflow/stream-order constraints, and the
/// aggregate committed count matches the injected batch count.
TEST(ClusterTest, KeyedWorkloadPreservesPerKeyOrdering) {
  constexpr int kKeys = 8;
  constexpr int kSeqsPerKey = 50;

  Cluster cluster(4);
  ASSERT_TRUE(cluster.Deploy(BuildKeyedChainPlan()).ok());

  // Record each partition's commit schedule (hooks run on that partition's
  // single worker thread; read only after Stop()).
  std::vector<std::vector<ScheduleEvent>> schedules(cluster.num_partitions());
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    cluster.partition(p).AddCommitHook(
        [&schedules, p](Partition&, const TransactionExecution& te) {
          schedules[p].push_back({te.proc_name(), te.batch_id()});
        });
  }

  cluster.Start();
  ClusterInjector::Options opts;
  opts.key_column = 0;
  ClusterInjector injector(&cluster, "ingest", opts);
  std::vector<TicketPtr> tickets;
  for (int seq = 0; seq < kSeqsPerKey; ++seq) {
    for (int key = 0; key < kKeys; ++key) {
      tickets.push_back(injector.InjectAsync(KeyVal(key, seq)));
    }
  }
  for (auto& t : tickets) ASSERT_TRUE(t->Wait().committed());
  cluster.WaitIdle();
  cluster.Stop();

  // Aggregate committed == injected batches: every batch runs the border TE
  // plus exactly one PE-triggered interior TE.
  constexpr uint64_t kBatches = kKeys * kSeqsPerKey;
  EXPECT_EQ(injector.batches_injected(), static_cast<int64_t>(kBatches));
  ClusterStats stats = cluster.GatherStats();
  EXPECT_EQ(stats.committed(), 2 * kBatches);
  EXPECT_EQ(stats.txn.client_requests, kBatches);
  EXPECT_EQ(stats.txn.internal_requests, kBatches);
  EXPECT_EQ(stats.aborted(), 0u);

  // Each partition's schedule respects the workflow; a key's rows live on
  // exactly its owning partition, in injection order.
  Workflow wf = KeyedChainWorkflow();
  std::map<int64_t, std::vector<int64_t>> seqs_by_key;
  std::map<int64_t, std::set<size_t>> partitions_by_key;
  uint64_t total_rows = 0;
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_TRUE(ValidateSchedule(wf, schedules[p]).ok()) << "partition " << p;
    for (const Tuple& row : SinkRows(cluster.store(p))) {
      int64_t key = row[0].as_int64();
      seqs_by_key[key].push_back(row[1].as_int64());
      partitions_by_key[key].insert(p);
      ++total_rows;
    }
  }
  EXPECT_EQ(total_rows, kBatches);
  ASSERT_EQ(seqs_by_key.size(), static_cast<size_t>(kKeys));
  for (const auto& [key, seqs] : seqs_by_key) {
    EXPECT_EQ(partitions_by_key[key].size(), 1u) << "key " << key;
    EXPECT_EQ(*partitions_by_key[key].begin(),
              cluster.PartitionOf(Value::BigInt(key)))
        << "key " << key;
    ASSERT_EQ(seqs.size(), static_cast<size_t>(kSeqsPerKey)) << "key " << key;
    for (int i = 0; i < kSeqsPerKey; ++i) {
      EXPECT_EQ(seqs[i], i) << "key " << key;
    }
  }
}

TEST(ClusterInjectorTest, ConcurrentProducersKeepPerPartitionBatchIdsInOrder) {
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 8;
  constexpr int kSeqsPerKey = 25;

  Cluster cluster(4);
  ASSERT_TRUE(cluster.Deploy(BuildKeyedChainPlan()).ok());
  std::vector<std::vector<int64_t>> border_batch_ids(cluster.num_partitions());
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    cluster.partition(p).AddCommitHook(
        [&border_batch_ids, p](Partition&, const TransactionExecution& te) {
          if (te.proc_name() == "ingest") {
            border_batch_ids[p].push_back(te.batch_id());
          }
        });
  }
  cluster.Start();

  ClusterInjector::Options opts;
  opts.key_column = 0;
  opts.max_queue_depth = 64;
  ClusterInjector injector(&cluster, "ingest", opts);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&injector, t] {
      // Disjoint key ranges per thread; keys from different threads still
      // collide on partitions, which is what exercises the lane locking.
      for (int seq = 0; seq < kSeqsPerKey; ++seq) {
        for (int k = 0; k < kKeysPerThread; ++k) {
          int64_t key = t * kKeysPerThread + k;
          injector.InjectAsync(KeyVal(key, seq));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  cluster.WaitIdle();
  cluster.Stop();

  // Within every partition the border TEs committed with batch ids
  // 1, 2, ..., N — allocation order and queue order agree even under
  // producer concurrency (the stream-order constraint per partition).
  int64_t total = 0;
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    const std::vector<int64_t>& ids = border_batch_ids[p];
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(ids[i], static_cast<int64_t>(i + 1)) << "partition " << p;
    }
    EXPECT_EQ(injector.batches_injected(p), static_cast<int64_t>(ids.size()));
    total += static_cast<int64_t>(ids.size());
  }
  EXPECT_EQ(total, kThreads * kKeysPerThread * kSeqsPerKey);
  EXPECT_EQ(injector.batches_injected(), total);
}

TEST(ClusterStatsTest, AggregationSumsPerPartitionAndResetClears) {
  Cluster cluster(4);
  ASSERT_TRUE(cluster.Deploy(BuildKeyedChainPlan()).ok());
  cluster.Start();
  ClusterInjector::Options opts;
  opts.key_column = 0;
  ClusterInjector injector(&cluster, "ingest", opts);
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 100; ++i) tickets.push_back(injector.InjectAsync(KeyVal(i, i)));
  for (auto& t : tickets) ASSERT_TRUE(t->Wait().committed());
  cluster.WaitIdle();

  ClusterStats stats = cluster.GatherStats();
  ASSERT_EQ(stats.per_partition.size(), 4u);
  ASSERT_EQ(stats.per_partition_engine.size(), 4u);
  uint64_t committed_sum = 0, gc_sum = 0;
  for (size_t p = 0; p < 4; ++p) {
    committed_sum += stats.per_partition[p].committed;
    gc_sum += stats.per_partition_engine[p].gc_deleted_rows;
  }
  EXPECT_EQ(stats.committed(), committed_sum);
  EXPECT_EQ(stats.committed(), 200u);  // 100 border + 100 interior
  EXPECT_EQ(stats.engine.gc_deleted_rows, gc_sum);

  // Consistent reset: partition-engine and execution-engine counters clear
  // together, on every partition.
  cluster.ResetStats();
  ClusterStats after = cluster.GatherStats();
  EXPECT_EQ(after.committed(), 0u);
  EXPECT_EQ(after.txn.client_requests, 0u);
  EXPECT_EQ(after.txn.internal_requests, 0u);
  EXPECT_EQ(after.engine.fragments_executed, 0u);
  EXPECT_EQ(after.engine.gc_deleted_rows, 0u);
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(after.per_partition[p].committed, 0u);
    EXPECT_EQ(after.per_partition_engine[p].gc_deleted_rows, 0u);
  }
  cluster.Stop();
}

TEST(ClusterTest, LinearRoadDeploymentRoutesByXway) {
  // The paper's partitioning scheme end to end: the Linear Road plan on a
  // 2-partition cluster, reports routed by the x-way column.
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster cluster(opts);
  LinearRoadConfig config;
  config.num_xways = 4;
  config.vehicles_per_xway = 10;
  config.duration_sec = 5;
  ASSERT_TRUE(cluster.Deploy(BuildLinearRoadDeployment(config)).ok());
  cluster.Start();

  ClusterInjector::Options inj_opts;
  inj_opts.key_column = 2;  // xway
  ClusterInjector injector(&cluster, "position_report", inj_opts);
  LinearRoadGenerator gen(config);
  std::vector<TicketPtr> tickets;
  int64_t reports = 0;
  for (int s = 0; s < config.duration_sec; ++s) {
    for (const PositionReport& r : gen.NextSecond()) {
      tickets.push_back(injector.InjectAsync(r.ToTuple()));
      ++reports;
    }
  }
  for (auto& t : tickets) ASSERT_TRUE(t->Wait().committed());
  cluster.WaitIdle();
  cluster.Stop();

  // Every partition holds exactly the vehicles of its own x-ways.
  Executor exec;
  uint64_t vehicles_total = 0;
  for (size_t p = 0; p < 2; ++p) {
    Table* vehicles = *cluster.store(p).catalog().GetTable("lr_vehicles");
    ScanSpec spec;
    spec.table = vehicles;
    std::vector<Tuple> rows = *exec.Scan(spec);
    for (const Tuple& row : rows) {
      EXPECT_EQ(static_cast<size_t>(row[1].as_int64() % 2), p);
      ++vehicles_total;
    }
  }
  EXPECT_EQ(vehicles_total,
            static_cast<uint64_t>(config.num_xways * config.vehicles_per_xway));
  EXPECT_GE(cluster.GatherStats().committed(), static_cast<uint64_t>(reports));
}

}  // namespace
}  // namespace sstore
