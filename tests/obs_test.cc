// Observability layer (src/obs/ + its cluster/server integration): histogram
// correctness under concurrency, registry snapshot/exposition round trips,
// provider/reset-hook lifecycles, the golden metric-name contract, the kStats
// wire round trip (live counters must match client-observed commits), trace
// span dumps, LatencyRecorder sort memoization, and the one-sweep
// Cluster::ResetStats semantics. Run in isolation with `ctest -L obs`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/wire_server.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace {

// ---- LatencyHistogram ----

TEST(LatencyHistogramTest, CountSumMaxExactPercentilesBucketed) {
  LatencyHistogram h;
  LatencyHistogram::Snapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.Percentile(50), 0);
  EXPECT_EQ(empty.Mean(), 0.0);

  for (int i = 0; i < 1000; ++i) h.Record(8);
  h.Record(100000);
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1001u);
  EXPECT_EQ(s.sum, 1000u * 8 + 100000u);
  EXPECT_EQ(s.max, 100000);
  // p50 lands in the [8,16) bucket; p100 is the exact max.
  int64_t p50 = s.Percentile(50);
  EXPECT_GE(p50, 8);
  EXPECT_LT(p50, 16);
  EXPECT_EQ(s.Percentile(100), 100000);

  // Bimodal split: quantiles on either side of the gap land in the right
  // bucket.
  LatencyHistogram h2;
  for (int i = 0; i < 100; ++i) h2.Record(4);
  for (int i = 0; i < 100; ++i) h2.Record(1024);
  LatencyHistogram::Snapshot s2 = h2.snapshot();
  EXPECT_LT(s2.Percentile(25), 8);
  EXPECT_GE(s2.Percentile(75), 1024);
  EXPECT_LT(s2.Percentile(75), 2048);
}

TEST(LatencyHistogramTest, NegativeValuesClampAndResetZeroes) {
  LatencyHistogram h;
  h.Record(-5);
  h.Record(0);
  EXPECT_EQ(h.snapshot().count, 2u);
  EXPECT_EQ(h.snapshot().sum, 0u);
  h.Reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().max, 0);
}

TEST(LatencyHistogramTest, ConcurrentRecordersLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(1 + (t * kPerThread + i) % 512);
    });
  }
  for (auto& th : threads) th.join();
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(s.max, 512);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

// ---- Registry, exposition, parsing ----

TEST(MetricsRegistryTest, SnapshotRenderParseRoundTrip) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("demo_ops_total");
  Gauge* g = reg.AddGauge("demo_depth");
  LatencyHistogram* h = reg.AddHistogram("demo_latency_us");
  c->Add(41);
  c->Add();
  g->Set(-7);
  for (int i = 0; i < 100; ++i) h->Record(32);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("demo_ops_total"), 42.0);
  EXPECT_EQ(snap.Value("demo_depth"), -7.0);
  EXPECT_EQ(snap.Value("absent_metric", 123.0), 123.0);
  const MetricSample* hist = snap.Find("demo_latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 100u);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("# TYPE demo_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_latency_us summary"), std::string::npos);

  std::map<std::string, double> parsed;
  for (auto& [name, value] : ParseMetricsText(text)) parsed[name] = value;
  EXPECT_EQ(parsed.at("demo_ops_total"), 42.0);
  EXPECT_EQ(parsed.at("demo_depth"), -7.0);
  EXPECT_EQ(parsed.at("demo_latency_us_count"), 100.0);
  double p50 = parsed.at("demo_latency_us{quantile=\"0.5\"}");
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
  EXPECT_EQ(parsed.at("demo_latency_us{quantile=\"1\"}"), 32.0);
}

TEST(MetricsRegistryTest, ProvidersAppendAndRemoveCleanly) {
  MetricsRegistry reg;
  reg.AddCounter("owned_total")->Add(5);
  uint64_t handle = reg.AddProvider([](std::vector<MetricSample>* out) {
    MetricSample s;
    s.name = "pulled_total";
    s.kind = MetricKind::kCounter;
    s.value = 9;
    out->push_back(std::move(s));
  });
  EXPECT_EQ(reg.Snapshot().Value("pulled_total"), 9.0);
  reg.RemoveProvider(handle);
  EXPECT_EQ(reg.Snapshot().Find("pulled_total"), nullptr);
  EXPECT_EQ(reg.Snapshot().Value("owned_total"), 5.0);
}

TEST(MetricsRegistryTest, ResetZeroesInstrumentsAndRunsHooks) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("reset_me_total");
  LatencyHistogram* h = reg.AddHistogram("reset_me_us");
  c->Add(10);
  h->Record(10);
  int hook_runs = 0;
  uint64_t handle = reg.AddResetHook([&hook_runs] { ++hook_runs; });
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->snapshot().count, 0u);
  EXPECT_EQ(hook_runs, 1);
  reg.RemoveResetHook(handle);
  reg.Reset();
  EXPECT_EQ(hook_runs, 1);
}

// ---- LatencyRecorder memoized sort (satellite) ----

TEST(LatencyRecorderTest, PercentileMemoizesSortUntilNextSample) {
  LatencyRecorder r;
  for (int64_t v : {50, 10, 40, 30, 20}) r.Record(v);
  EXPECT_EQ(r.Percentile(0), 10);
  EXPECT_EQ(r.Percentile(100), 50);
  EXPECT_EQ(r.Max(), 50);

  // New samples must invalidate the memoized order.
  r.Record(5);
  EXPECT_EQ(r.Percentile(0), 5);
  EXPECT_EQ(r.Max(), 50);

  LatencyRecorder other;
  other.Record(99);
  r.Percentile(50);  // memoize again...
  r.Merge(other);    // ...then invalidate via Merge
  EXPECT_EQ(r.Percentile(100), 99);
  EXPECT_EQ(r.Max(), 99);

  r.Clear();
  EXPECT_EQ(r.Percentile(50), 0);
  EXPECT_EQ(r.count(), 0u);
}

// ---- Trace ring & JSON ----

TEST(TraceRingTest, KeepsNewestEventsOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.Push(TraceEvent{"execute", i * 100, 10, 0, i});
  }
  EXPECT_EQ(ring.total_pushed(), 6u);
  std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 2);
  EXPECT_EQ(events.back().id, 5);

  std::string json = TraceEventsToJson(events);
  while (!json.empty() && json.back() == '\n') json.pop_back();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);

  ring.Clear();
  EXPECT_TRUE(ring.Events().empty());
}

// ---- Cluster + wire integration ----

Cluster::Options ObsClusterOpts(int partitions) {
  Cluster::Options opts;
  opts.num_partitions = partitions;
  opts.routing = PartitionMap::Mode::kModulo;
  // Sample everything so small test loads land in the histogram and rings.
  opts.latency_sample_every = 1;
  opts.trace_sample_every = 1;
  return opts;
}

struct ObsHarness {
  explicit ObsHarness(int partitions)
      : cluster(ObsClusterOpts(partitions)),
        config{16, 1000},
        app(&cluster, config),
        server(&cluster, {}) {
    EXPECT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    EXPECT_TRUE(server.Start().ok());
  }

  ~ObsHarness() {
    server.Stop();
    cluster.Stop();
  }

  std::unique_ptr<WireClient> Connect() {
    auto client = WireClient::Connect({"127.0.0.1", server.port()});
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// `n` keyed votes over the wire; returns the client-observed commit count
  /// (every vote should commit at this load — no sheds, ample votes left).
  int64_t Vote(WireClient* client, int n) {
    int64_t committed = 0;
    std::vector<WireFuturePtr> futures;
    futures.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      int64_t c = i % config.num_contestants;
      futures.push_back(client->SubmitAsync("vc_vote", {Value::BigInt(c)},
                                            Value::BigInt(c)));
    }
    EXPECT_TRUE(client->Flush().ok());
    for (auto& f : futures) {
      const WireResult& r = f->Wait();
      EXPECT_TRUE(r.transport.ok()) << r.transport.ToString();
      EXPECT_FALSE(r.busy);
      if (r.committed()) ++committed;
    }
    return committed;
  }

  Cluster cluster;
  VoterClusterConfig config;
  VoterClusterApp app;
  WireServer server;
};

std::map<std::string, double> FetchParsed(WireClient* client) {
  auto text = client->FetchStats();
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  std::map<std::string, double> parsed;
  if (text.ok()) {
    for (auto& [name, value] : ParseMetricsText(*text)) parsed[name] = value;
  }
  return parsed;
}

// The PR's acceptance check: a kStats round trip against a live loaded
// server returns a parseable snapshot whose submitted/committed counters
// match what the client observed.
TEST(ClusterObsTest, StatsRoundTripMatchesClientObservedCommits) {
  ObsHarness h(2);
  auto client = h.Connect();
  constexpr int kVotes = 400;
  int64_t committed = h.Vote(client.get(), kVotes);
  EXPECT_EQ(committed, kVotes);
  h.cluster.WaitIdle();

  std::map<std::string, double> m = FetchParsed(client.get());
  ASSERT_FALSE(m.empty());
  EXPECT_EQ(m.at("sstore_wire_requests_submitted_total"),
            static_cast<double>(kVotes));
  EXPECT_EQ(m.at("sstore_txn_client_requests_total"),
            static_cast<double>(kVotes));
  // Triggers may commit additional internal txns; never fewer than the
  // client saw commit.
  EXPECT_GE(m.at("sstore_txn_committed_total"), static_cast<double>(committed));
  EXPECT_EQ(m.at("sstore_partitions"), 2.0);
  EXPECT_GE(m.at("sstore_wire_stats_requests_total"), 1.0);
  // Per-partition committed must sum to the cluster total.
  double per_part = 0;
  for (int p = 0; p < 2; ++p) {
    per_part += m.at(LabeledMetric("sstore_partition_committed_total",
                                   "partition", std::to_string(p)));
  }
  EXPECT_EQ(per_part, m.at("sstore_txn_committed_total"));
  // With sample_every=1, the latency histogram saw at least one batch.
  EXPECT_GE(m.at("sstore_txn_latency_us_count"), 1.0);
}

TEST(ClusterObsTest, GoldenMetricNamesAllPresent) {
  ObsHarness h(2);
  auto client = h.Connect();
  h.Vote(client.get(), 50);
  h.cluster.WaitIdle();
  auto text = client->FetchStats();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  std::vector<std::pair<std::string, double>> parsed =
      ParseMetricsText(*text);
  ASSERT_FALSE(parsed.empty());

  std::ifstream golden(std::string(SSTORE_SOURCE_DIR) +
                       "/tools/golden_metrics.txt");
  ASSERT_TRUE(golden.is_open()) << "tools/golden_metrics.txt missing";
  std::string name;
  int checked = 0;
  while (std::getline(golden, name)) {
    if (name.empty() || name[0] == '#') continue;
    bool found = false;
    for (auto& [parsed_name, value] : parsed) {
      if (parsed_name.compare(0, name.size(), name) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "golden metric missing from exposition: " << name;
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

TEST(ClusterObsTest, TraceDumpIsChromeTracingJson) {
  ObsHarness h(2);
  auto client = h.Connect();
  h.Vote(client.get(), 200);
  h.cluster.WaitIdle();

  std::string json = h.cluster.DumpTraceJson();
  while (!json.empty() && json.back() == '\n') json.pop_back();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Batch spans: the sampled last-invocation-of-batch records queue_wait and
  // execute phases (log/commit-hook spans only when those stages ran).
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  ASSERT_NE(h.cluster.trace_ring(0), nullptr);
  ASSERT_NE(h.cluster.trace_ring(1), nullptr);
  EXPECT_EQ(h.cluster.trace_ring(99), nullptr);
  EXPECT_GT(h.cluster.trace_ring(0)->total_pushed() +
                h.cluster.trace_ring(1)->total_pushed(),
            0u);
}

// Satellite: ResetStats must sweep the registry, wire-server counters, and
// the latency histogram in one pass (LogStats deliberately excluded — they
// are lifetime-cumulative, see cluster.h).
TEST(ClusterObsTest, ResetStatsSweepsRegistryWireAndHistogram) {
  ObsHarness h(2);
  auto client = h.Connect();
  h.Vote(client.get(), 100);
  h.cluster.WaitIdle();

  EXPECT_GT(h.server.stats().frames_received, 0u);
  ASSERT_NE(h.cluster.txn_latency_histogram(), nullptr);
  EXPECT_GT(h.cluster.txn_latency_histogram()->snapshot().count, 0u);

  h.cluster.ResetStats();

  EXPECT_EQ(h.server.stats().frames_received, 0u);
  EXPECT_EQ(h.server.stats().requests_submitted, 0u);
  EXPECT_EQ(h.cluster.txn_latency_histogram()->snapshot().count, 0u);
  ClusterStats cs = h.cluster.GatherStats();
  EXPECT_EQ(cs.txn.committed, 0u);

  // The wire endpoint reflects the sweep immediately.
  std::map<std::string, double> m = FetchParsed(client.get());
  EXPECT_EQ(m.at("sstore_txn_committed_total"), 0.0);
  EXPECT_EQ(m.at("sstore_wire_requests_submitted_total"), 0.0);
}

}  // namespace
}  // namespace sstore
