#include <gtest/gtest.h>

#include "baselines/spark_sim.h"
#include "baselines/storm_sim.h"
#include "workloads/voter.h"

namespace sstore {
namespace {

Tuple Vote(int64_t phone, int64_t contestant) {
  return {Value::BigInt(phone), Value::BigInt(contestant), Value::Timestamp(0)};
}

// ---- Spark simulation ----

TEST(RddTest, EmptyAndAppend) {
  auto rdd = Rdd::Empty(4);
  EXPECT_EQ(rdd->num_partitions(), 4u);
  EXPECT_EQ(rdd->TotalRows(), 0u);
  size_t copied = 0;
  auto next = rdd->WithAppended({Vote(1, 0), Vote(2, 1)}, 0, &copied);
  EXPECT_EQ(copied, 0u);  // appended to empty partitions: nothing to copy
  EXPECT_EQ(next->TotalRows(), 2u);
  EXPECT_EQ(rdd->TotalRows(), 0u);  // immutability: the old RDD is unchanged
  EXPECT_NE(rdd->id(), next->id());
}

TEST(RddTest, CopyOnWriteCopiesTouchedPartitions) {
  auto rdd = Rdd::Empty(2);
  size_t copied = 0;
  for (int i = 0; i < 100; ++i) {
    rdd = rdd->WithAppended({Vote(i, 0)}, 0, &copied);
  }
  EXPECT_EQ(rdd->TotalRows(), 100u);
  // The last single-row append still copied an entire partition.
  size_t last_copy = 0;
  rdd = rdd->WithAppended({Vote(1000, 0)}, 0, &last_copy);
  EXPECT_GT(last_copy, 10u);
}

TEST(RddTest, ContainsScansAllPartitions) {
  auto rdd = Rdd::Empty(3);
  rdd = rdd->WithAppended({Vote(7, 0), Vote(8, 1), Vote(9, 2)}, 0, nullptr);
  EXPECT_TRUE(rdd->Contains(0, Value::BigInt(8)));
  EXPECT_FALSE(rdd->Contains(0, Value::BigInt(10)));
}

TEST(SparkVoterTest, ValidationRejectsDuplicatesAcrossBatches) {
  SparkVoterConfig config;
  SparkVoterJob job(config);
  EXPECT_EQ(job.ProcessBatch({Vote(1, 0), Vote(2, 1), Vote(1, 0)}), 2u);
  EXPECT_EQ(job.ProcessBatch({Vote(2, 1), Vote(3, 2)}), 1u);
  EXPECT_EQ(job.stats().votes_accepted, 3u);
  EXPECT_EQ(job.stats().votes_rejected, 2u);
  EXPECT_EQ(job.state_rows(), 3u);
  EXPECT_GT(job.stats().validation_scans, 0u);
}

TEST(SparkVoterTest, NoValidationAcceptsEverything) {
  SparkVoterConfig config;
  config.validate = false;
  SparkVoterJob job(config);
  EXPECT_EQ(job.ProcessBatch({Vote(1, 0), Vote(1, 0)}), 2u);
  EXPECT_EQ(job.stats().validation_scans, 0u);
}

TEST(SparkVoterTest, WindowedLeaderboardSlidesByInterval) {
  SparkVoterConfig config;
  config.validate = false;
  config.window_intervals = 2;
  SparkVoterJob job(config);
  job.ProcessBatch({Vote(1, 0), Vote(2, 0), Vote(3, 1)});  // interval 1
  job.ProcessBatch({Vote(4, 1)});                          // interval 2
  auto board = job.Leaderboard(2);
  ASSERT_EQ(board.size(), 2u);
  EXPECT_EQ(board[0].first, 0);  // contestant 0: 2 votes in window
  EXPECT_EQ(board[0].second, 2);
  job.ProcessBatch({Vote(5, 1)});  // interval 3: interval 1 expires
  board = job.Leaderboard(2);
  EXPECT_EQ(board[0].first, 1);  // contestant 1 now leads (2 in window)
  EXPECT_EQ(board[0].second, 2);
}

TEST(SparkVoterTest, LineageGrowsAndCheckpointsHappen) {
  SparkVoterConfig config;
  config.validate = false;
  config.checkpoint_every = 2;
  SparkVoterJob job(config);
  for (int i = 0; i < 6; ++i) job.ProcessBatch({Vote(i, 0)});
  EXPECT_EQ(job.lineage_size(), 6u);
  EXPECT_EQ(job.stats().checkpoints, 3u);
  EXPECT_GT(job.stats().checkpoint_bytes, 0u);
}

// ---- Storm simulation ----

TEST(MemcachedSimTest, AddGetPutSemantics) {
  MemcachedSim store;
  std::string value;
  EXPECT_FALSE(store.Get("k", &value));
  EXPECT_TRUE(store.Add("k", "1"));
  EXPECT_FALSE(store.Add("k", "2"));  // add: no overwrite
  EXPECT_TRUE(store.Get("k", &value));
  EXPECT_EQ(value, "1");
  store.Put("k", "3");
  EXPECT_TRUE(store.Get("k", &value));
  EXPECT_EQ(value, "3");
  EXPECT_GE(store.ops(), 6u);
  EXPECT_GT(store.bytes_transferred(), 0u);
}

TEST(StormVoterTest, ExactlyOnceAcceptanceAndAcking) {
  StormVoterConfig config;
  config.trident_batch = 4;
  StormVoterTopology topology(config);
  topology.Start();
  for (int i = 0; i < 20; ++i) topology.Push(Vote(i, i % 3));
  topology.Push(Vote(0, 0));  // duplicate phone
  topology.Drain();
  EXPECT_EQ(topology.stats().emitted, 21u);
  EXPECT_EQ(topology.stats().accepted, 20u);
  EXPECT_EQ(topology.stats().rejected, 1u);
  // Every tuple acked: upstream backup fully trimmed.
  EXPECT_EQ(topology.stats().acked, 21u);
  EXPECT_GE(topology.stats().state_commits, 5u);  // ceil(20/4)
}

TEST(StormVoterTest, ManualWindowKeepsLastN) {
  StormVoterConfig config;
  config.validate = false;
  config.window_size = 5;
  StormVoterTopology topology(config);
  topology.Start();
  // 10 votes for contestant 0, then 5 for contestant 1.
  for (int i = 0; i < 10; ++i) topology.Push(Vote(i, 0));
  for (int i = 10; i < 15; ++i) topology.Push(Vote(i, 1));
  topology.Drain();
  auto board = topology.Leaderboard(2);
  ASSERT_EQ(board.size(), 1u);  // only contestant 1 left in the window
  EXPECT_EQ(board[0].first, 1);
  EXPECT_EQ(board[0].second, 5);
}

TEST(StormVoterTest, AsyncLogReceivesCommits) {
  StormVoterConfig config;
  config.validate = false;
  config.trident_batch = 5;
  config.log_path = ::testing::TempDir() + "/storm_log.bin";
  {
    StormVoterTopology topology(config);
    topology.Start();
    for (int i = 0; i < 10; ++i) topology.Push(Vote(i, 0));
    topology.Drain();
    EXPECT_GT(topology.stats().log_bytes, 0u);
  }
}

// ---- Cross-system agreement (sanity for Figure 10) ----

TEST(BaselineAgreementTest, AllThreeSystemsAcceptTheSameVotes) {
  VoterConfig vconfig;
  vconfig.validate_votes = true;
  VoteGenerator gen(vconfig, 123, /*invalid_fraction=*/0.1);
  std::vector<Tuple> votes;
  for (int i = 0; i < 500; ++i) votes.push_back(gen.Next());

  // Spark.
  SparkVoterConfig sconfig;
  SparkVoterJob spark(sconfig);
  for (size_t i = 0; i < votes.size(); i += 100) {
    std::vector<Tuple> batch(votes.begin() + i, votes.begin() + i + 100);
    spark.ProcessBatch(batch);
  }
  // Storm.
  StormVoterConfig stconfig;
  StormVoterTopology storm(stconfig);
  storm.Start();
  for (const Tuple& v : votes) storm.Push(v);
  storm.Drain();

  // Both reject exactly the duplicate-phone votes. (Unknown-contestant
  // invalids only exist for systems that check contestants; neither sim
  // does, matching the paper's simplified Spark/Storm variants.)
  EXPECT_EQ(spark.stats().votes_accepted, storm.stats().accepted);
  EXPECT_EQ(spark.stats().votes_rejected, storm.stats().rejected);
}

}  // namespace
}  // namespace sstore
