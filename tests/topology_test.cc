// Placement-aware topology deployment (ISSUE 4): TopologyBuilder validation
// and channel derivation, sliced deployment, cross-partition stream channels
// (ordering per paper §2.2, exactly-once across kill-and-recover), Describe
// goldens, and command-log rotation at the coordinated checkpoint.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cluster_injector.h"
#include "cluster/stream_channel.h"
#include "cluster/topology.h"
#include "query/expr.h"
#include "streaming/injector.h"
#include "workloads/linear_road.h"

namespace sstore {
namespace {

std::string TempPath(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return ::testing::TempDir() + "/sstore_topo_" + pid + "_" + name;
}

std::string MakeDir(const std::string& name) {
  std::string path = TempPath(name);
  ::mkdir(path.c_str(), 0755);
  return path;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Schema KeyValSchema() {
  return Schema({{"key", ValueType::kBigInt}, {"val", ValueType::kBigInt}});
}

Tuple KeyVal(int64_t key, int64_t val) {
  return {Value::BigInt(key), Value::BigInt(val)};
}

WorkflowNode Node(std::string proc, SpKind kind,
                  std::vector<std::string> inputs,
                  std::vector<std::string> outputs) {
  WorkflowNode n;
  n.proc = std::move(proc);
  n.kind = kind;
  n.input_streams = std::move(inputs);
  n.output_streams = std::move(outputs);
  return n;
}

/// Three-stage pipeline: ingest (border) emits into sA; "middle" adds 100 to
/// the value and re-emits into sB; "last" copies the batch into table "sink"
/// and the terminal stream "sOut". The canonical placed workflow under test.
TopologyBuilder PipelineBuilder() {
  TopologyBuilder topo("pipeline");
  topo.DefineStream("sA", KeyValSchema())
      .DefineStream("sB", KeyValSchema())
      .DefineStream("sOut", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .RegisterProcedure(
          "ingest", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            return ctx.EmitToStream("sA", {ctx.params()});
          }))
      .RegisterProcedure(
          "middle", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>([bound](ProcContext& ctx) {
              SSTORE_ASSIGN_OR_RETURN(
                  std::vector<Tuple> rows,
                  bound->streams().BatchContents("sA", ctx.batch_id()));
              for (Tuple& row : rows) {
                row[1] = Value::BigInt(row[1].as_int64() + 100);
              }
              return ctx.EmitToStream("sB", std::move(rows));
            });
          })
      .RegisterProcedure(
          "last", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>([bound](ProcContext& ctx) {
              SSTORE_ASSIGN_OR_RETURN(
                  std::vector<Tuple> rows,
                  bound->streams().BatchContents("sB", ctx.batch_id()));
              SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
              for (const Tuple& row : rows) {
                SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                        ctx.exec().Insert(sink, row));
                (void)rid;
              }
              return ctx.EmitToStream("sOut", std::move(rows));
            });
          });
  return topo;
}

Result<Topology> BuildPipeline(Placement ingest, Placement middle,
                               Placement last) {
  TopologyBuilder topo = PipelineBuilder();
  topo.AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}), ingest)
      .AddStage(Node("middle", SpKind::kInterior, {"sA"}, {"sB"}), middle)
      .AddStage(Node("last", SpKind::kInterior, {"sB"}, {"sOut"}), last);
  return topo.Build();
}

std::vector<Tuple> SinkRows(SStore& store) {
  Table* sink = *store.catalog().GetTable("sink");
  Executor exec;
  ScanSpec spec;
  spec.table = sink;
  return *exec.Scan(spec);
}

// ---- Builder validation & channel derivation ----

TEST(TopologyBuilderTest, EverywherePlacementDerivesNoChannels) {
  Result<Topology> topo =
      BuildPipeline(Placement::Everywhere(), Placement::Everywhere(),
                    Placement::Everywhere());
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_TRUE(topo->channels().empty());
}

TEST(TopologyBuilderTest, PinnedChainDerivesOneChannelPerBoundary) {
  Result<Topology> topo = BuildPipeline(
      Placement::Pinned(0), Placement::Pinned(1), Placement::Pinned(2));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_EQ(topo->channels().size(), 2u);
  EXPECT_EQ(topo->channels()[0].stream, "sA");
  EXPECT_EQ(topo->channels()[0].consumer, "middle");
  EXPECT_EQ(topo->channels()[0].producers, std::vector<std::string>{"ingest"});
  EXPECT_EQ(topo->channels()[1].stream, "sB");
  EXPECT_EQ(topo->channels()[1].consumer, "last");
  // Co-located pinned stages need no channel.
  Result<Topology> colocated = BuildPipeline(
      Placement::Pinned(1), Placement::Pinned(1), Placement::Pinned(2));
  ASSERT_TRUE(colocated.ok());
  ASSERT_EQ(colocated->channels().size(), 1u);
  EXPECT_EQ(colocated->channels()[0].stream, "sB");
}

TEST(TopologyBuilderTest, KeyPreservingKeyedStagesStayLocal) {
  Result<Topology> topo = BuildPipeline(Placement::Keyed(0),
                                        Placement::Keyed(0),
                                        Placement::Keyed(0));
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_TRUE(topo->channels().empty());
  // Different key columns cross the boundary.
  Result<Topology> rekeyed = BuildPipeline(
      Placement::Keyed(0), Placement::Keyed(1), Placement::Keyed(1));
  ASSERT_TRUE(rekeyed.ok());
  ASSERT_EQ(rekeyed->channels().size(), 1u);
  EXPECT_EQ(rekeyed->channels()[0].stream, "sA");
}

TEST(TopologyBuilderTest, BuildRejectsInvalidPlacements) {
  // Place() on an unknown stage.
  {
    TopologyBuilder topo = PipelineBuilder();
    topo.AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}));
    topo.Place("ghost", Placement::Pinned(1));
    EXPECT_EQ(topo.Build().status().code(), StatusCode::kNotFound);
  }
  // Stage without a registered procedure.
  {
    TopologyBuilder topo("t");
    topo.DefineStream("sA", KeyValSchema());
    topo.AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}));
    EXPECT_EQ(topo.Build().status().code(), StatusCode::kInvalidArgument);
  }
  // A boundary stream feeding two consumers is not transportable (v1).
  {
    TopologyBuilder topo = PipelineBuilder();
    topo.RegisterProcedure(
        "middle2", SpKind::kInterior,
        std::make_shared<LambdaProcedure>(
            [](ProcContext&) { return Status::OK(); }));
    topo.AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}),
                  Placement::Pinned(0))
        .AddStage(Node("middle", SpKind::kInterior, {"sA"}, {"sB"}),
                  Placement::Pinned(1))
        .AddStage(Node("middle2", SpKind::kInterior, {"sA"}, {}),
                  Placement::Pinned(2))
        .AddStage(Node("last", SpKind::kInterior, {"sB"}, {"sOut"}),
                  Placement::Pinned(1));
    EXPECT_EQ(topo.Build().status().code(), StatusCode::kInvalidArgument);
  }
  // A multi-input join cannot sit behind a channel (v1).
  {
    TopologyBuilder topo = PipelineBuilder();
    topo.AddStage(Node("ingest", SpKind::kBorder, {}, {"sA", "sB"}),
                  Placement::Pinned(0))
        .AddStage(Node("last", SpKind::kInterior, {"sA", "sB"}, {"sOut"}),
                  Placement::Pinned(1));
    EXPECT_EQ(topo.Build().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(TopologyBuilderTest, MultiLaneCascadeRejected) {
  // A keyed (multi-lane) channel feeding a stage whose output crosses
  // another boundary would interleave lanes at the middle stage and emit
  // non-monotonic ids into the second channel — rejected at build time.
  Result<Topology> cascade = BuildPipeline(
      Placement::Keyed(0), Placement::Pinned(1), Placement::Pinned(2));
  EXPECT_EQ(cascade.status().code(), StatusCode::kInvalidArgument);
  // A single-lane (pinned-producer) upstream keeps the cascade legal.
  Result<Topology> single_lane = BuildPipeline(
      Placement::Pinned(0), Placement::Pinned(1), Placement::Pinned(2));
  EXPECT_TRUE(single_lane.ok());
}

TEST(TopologyBuilderTest, DeployRejectsPinningOutsideCluster) {
  Result<Topology> topo = BuildPipeline(
      Placement::Pinned(0), Placement::Pinned(1), Placement::Pinned(5));
  ASSERT_TRUE(topo.ok());
  Cluster cluster(3);
  EXPECT_EQ(cluster.Deploy(*topo).code(), StatusCode::kInvalidArgument);
}

// ---- Describe goldens (deployment diffing relies on this exact shape) ----

TEST(DescribeGoldenTest, DeploymentPlanOneLinePerStep) {
  DeploymentPlan plan;
  plan.DefineStream("in", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .CreateIndex("sink", "pk", {"key"}, /*unique=*/true)
      .InsertRow("sink", KeyVal(0, 0))
      .RegisterProcedure("ingest", SpKind::kBorder,
                         std::make_shared<LambdaProcedure>(
                             [](ProcContext&) { return Status::OK(); }));
  Workflow wf("chain");
  (void)wf.AddNode(Node("ingest", SpKind::kBorder, {}, {"in"}));
  plan.DeployWorkflow(std::move(wf));

  EXPECT_EQ(plan.Describe(),
            "0: DefineStream stream in\n"
            "1: CreateTable table sink\n"
            "2: CreateIndex index sink.pk\n"
            "3: InsertRow seed row in sink\n"
            "4: RegisterProcedure procedure ingest (BORDER)\n"
            "5: DeployWorkflow workflow chain\n");
}

TEST(DescribeGoldenTest, TopologyAnnotatesPlacementsAndChannels) {
  TopologyBuilder topo("two_stage");
  topo.DefineStream("sA", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .RegisterProcedure("ingest", SpKind::kBorder,
                         std::make_shared<LambdaProcedure>(
                             [](ProcContext&) { return Status::OK(); }))
      .RegisterProcedure("apply", SpKind::kInterior,
                         std::make_shared<LambdaProcedure>(
                             [](ProcContext&) { return Status::OK(); }))
      .AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}),
                Placement::Pinned(0))
      .AddStage(Node("apply", SpKind::kInterior, {"sA"}, {}),
                Placement::Pinned(1));
  Result<Topology> built = topo.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  EXPECT_EQ(built->Describe(),
            "0: DefineStream stream sA\n"
            "1: CreateTable table sink\n"
            "stage-procedure ingest (BORDER)\n"
            "stage-procedure apply (INTERIOR)\n"
            "stage ingest placement=pinned(0) outputs=[sA]\n"
            "stage apply placement=pinned(1) inputs=[sA]\n"
            "channel sA: ingest@pinned(0) -> apply@pinned(1)\n");
}

// ---- Sliced deployment ----

TEST(PlacedDeployTest, SlicesStagesAndChannelPlumbingPerPartition) {
  Result<Topology> topo = BuildPipeline(
      Placement::Pinned(0), Placement::Pinned(1), Placement::Pinned(2));
  ASSERT_TRUE(topo.ok());
  Cluster cluster(3);
  ASSERT_TRUE(cluster.Deploy(*topo).ok());
  ASSERT_EQ(cluster.channels().size(), 2u);

  // Stage procedures exist only where their placement runs.
  EXPECT_TRUE(cluster.store(0).partition().HasProcedure("ingest"));
  EXPECT_FALSE(cluster.store(0).partition().HasProcedure("middle"));
  EXPECT_FALSE(cluster.store(0).partition().HasProcedure("last"));
  EXPECT_TRUE(cluster.store(1).partition().HasProcedure("middle"));
  EXPECT_FALSE(cluster.store(1).partition().HasProcedure("ingest"));
  EXPECT_TRUE(cluster.store(2).partition().HasProcedure("last"));

  // Channel delivery plumbing sits on the consumer partitions only.
  std::string chan_a = ChannelIngestProcName("sA");
  std::string chan_b = ChannelIngestProcName("sB");
  EXPECT_FALSE(cluster.store(0).partition().HasProcedure(chan_a));
  EXPECT_TRUE(cluster.store(1).partition().HasProcedure(chan_a));
  EXPECT_TRUE(cluster.store(1).catalog().HasTable(ChannelCursorTableName("sA")));
  EXPECT_TRUE(cluster.store(2).partition().HasProcedure(chan_b));
  EXPECT_FALSE(cluster.store(2).partition().HasProcedure(chan_a));

  // Shared DDL is everywhere (recovery re-creates any partition from its
  // deterministic slice).
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(cluster.store(p).catalog().HasTable("sink"));
    EXPECT_TRUE(cluster.store(p).streams().HasStream("sA"));
  }
}

// ---- The acceptance scenario: placed == replicated, including order ----

TEST(PlacedDeployTest, PlacedPipelineMatchesReplicatedSinglePartition) {
  constexpr int kBatches = 60;

  // Baseline: the same topology, every stage everywhere, one partition.
  Cluster baseline(1);
  Result<Topology> everywhere =
      BuildPipeline(Placement::Everywhere(), Placement::Everywhere(),
                    Placement::Everywhere());
  ASSERT_TRUE(everywhere.ok());
  ASSERT_TRUE(baseline.Deploy(*everywhere).ok());
  baseline.Start();
  StreamInjector base_inject(&baseline.partition(0), "ingest");
  for (int i = 0; i < kBatches; ++i) base_inject.InjectAsync(KeyVal(i, i));
  baseline.WaitIdle();
  baseline.Stop();

  // Placed: one stage per partition, streams as the transport.
  Result<Topology> placed = BuildPipeline(
      Placement::Pinned(0), Placement::Pinned(1), Placement::Pinned(2));
  ASSERT_TRUE(placed.ok());
  Cluster cluster(3);
  ASSERT_TRUE(cluster.Deploy(*placed).ok());

  // Per-partition commit schedules: the stream-order constraint (§2.2) must
  // hold per channel lane — each stage and each delivery procedure sees
  // strictly increasing batch ids.
  std::vector<std::vector<ScheduleEvent>> schedules(3);
  for (size_t p = 0; p < 3; ++p) {
    cluster.partition(p).AddCommitHook(
        [&schedules, p](Partition&, const TransactionExecution& te) {
          schedules[p].push_back({te.proc_name(), te.batch_id()});
        });
  }

  cluster.Start();
  StreamInjector inject(&cluster.partition(0), "ingest");
  for (int i = 0; i < kBatches; ++i) inject.InjectAsync(KeyVal(i, i));
  cluster.WaitIdle();
  cluster.Stop();

  // Table state: byte-identical rows, in the same order.
  std::vector<Tuple> expected = SinkRows(baseline.store(0));
  std::vector<Tuple> actual = SinkRows(cluster.store(2));
  ASSERT_EQ(expected.size(), static_cast<size_t>(kBatches));
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "sink row " << i;
  }
  EXPECT_TRUE(SinkRows(cluster.store(0)).empty());
  EXPECT_TRUE(SinkRows(cluster.store(1)).empty());

  // Stream outputs: the terminal stream drains identically.
  std::vector<Tuple> expected_out = *baseline.store(0).streams().Drain("sOut");
  std::vector<Tuple> actual_out = *cluster.store(2).streams().Drain("sOut");
  ASSERT_EQ(actual_out.size(), expected_out.size());
  for (size_t i = 0; i < expected_out.size(); ++i) {
    EXPECT_EQ(actual_out[i], expected_out[i]) << "sOut row " << i;
  }

  // Boundary streams fully consumed: forwarded batches were GC'd after the
  // deliveries were acknowledged.
  EXPECT_TRUE((*cluster.store(0).streams().PendingBatches("sA")).empty());
  EXPECT_TRUE((*cluster.store(1).streams().PendingBatches("sB")).empty());

  // Channel batch order per §2.2: strictly increasing ids per procedure on
  // every partition, and delivered ids sit in the channel id range.
  for (size_t p = 0; p < 3; ++p) {
    std::map<std::string, int64_t> last;
    for (const ScheduleEvent& e : schedules[p]) {
      auto it = last.find(e.proc);
      if (it != last.end()) {
        EXPECT_GT(e.batch_id, it->second)
            << "partition " << p << " proc " << e.proc;
      }
      last[e.proc] = e.batch_id;
    }
  }
  for (const ScheduleEvent& e : schedules[1]) {
    if (e.proc == "middle") EXPECT_GE(e.batch_id, kChannelBatchIdBase);
  }

  // 5 commits per batch on the placed cluster (ingest, delivery, middle,
  // delivery, last) vs 3 on the replicated baseline.
  EXPECT_EQ(cluster.GatherStats().committed(),
            static_cast<uint64_t>(5 * kBatches));
  EXPECT_EQ(baseline.GatherStats().committed(),
            static_cast<uint64_t>(3 * kBatches));
  uint64_t forwarded = 0;
  for (const auto& channel : cluster.channels()) {
    forwarded += channel->stats().deliveries;
  }
  EXPECT_EQ(forwarded, static_cast<uint64_t>(2 * kBatches));
}

TEST(PlacedDeployTest, KeyedConsumerSplitsDeliveriesByKeyColumn) {
  constexpr int kBatches = 16;
  TopologyBuilder topo("keyed_fan");
  topo.DefineStream("sA", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .RegisterProcedure(
          "ingest", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            return ctx.EmitToStream("sA", {ctx.params()});
          }))
      .RegisterProcedure(
          "apply", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>([bound](ProcContext& ctx) {
              SSTORE_ASSIGN_OR_RETURN(
                  std::vector<Tuple> rows,
                  bound->streams().BatchContents("sA", ctx.batch_id()));
              SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
              for (const Tuple& row : rows) {
                SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                        ctx.exec().Insert(sink, row));
                (void)rid;
              }
              return Status::OK();
            });
          })
      .AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}),
                Placement::Pinned(0))
      .AddStage(Node("apply", SpKind::kInterior, {"sA"}, {}),
                Placement::Keyed(0));
  Result<Topology> built = topo.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->channels().size(), 1u);

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(*built).ok());
  cluster.Start();
  StreamInjector inject(&cluster.partition(0), "ingest");
  for (int i = 0; i < kBatches; ++i) inject.InjectAsync(KeyVal(i, i));
  cluster.WaitIdle();
  cluster.Stop();

  // Every row landed on the partition owning its key — including the
  // self-deliveries back to the ingest partition.
  size_t total = 0;
  for (size_t p = 0; p < 2; ++p) {
    for (const Tuple& row : SinkRows(cluster.store(p))) {
      EXPECT_EQ(static_cast<size_t>(row[0].as_int64() % 2), p);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kBatches));
}

// ---- Recovery ----

TEST(PlacedRecoveryTest, KillAndRecoverReplaysPlacedTopologyToSameCut) {
  constexpr int kBefore = 30;
  constexpr int kAfter = 30;
  std::string ckpt_dir = MakeDir("placed_ckpt");
  std::string log_dir = MakeDir("placed_logs");

  Result<Topology> placed = BuildPipeline(
      Placement::Pinned(0), Placement::Pinned(1), Placement::Pinned(2));
  ASSERT_TRUE(placed.ok());

  std::vector<Tuple> live_sink;
  {
    Cluster::Options opts;
    opts.num_partitions = 3;
    opts.log_dir = log_dir;
    opts.log_sync = false;
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.Deploy(*placed).ok());
    cluster.Start();
    StreamInjector inject(&cluster.partition(0), "ingest");
    for (int i = 0; i < kBefore; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    // Post-checkpoint tail: replay + channel reconciliation must
    // reconstruct exactly this.
    for (int i = kBefore; i < kBefore + kAfter; ++i) {
      inject.InjectAsync(KeyVal(i, i));
    }
    cluster.WaitIdle();
    live_sink = SinkRows(cluster.store(2));
    cluster.Stop();
    // "Crash": only checkpoint + logs survive.
  }
  ASSERT_EQ(live_sink.size(), static_cast<size_t>(kBefore + kAfter));

  Cluster recovered(3);
  ASSERT_TRUE(recovered.Deploy(*placed).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  recovered.Start();
  recovered.WaitIdle();
  recovered.Stop();

  std::vector<Tuple> recovered_sink = SinkRows(recovered.store(2));
  ASSERT_EQ(recovered_sink.size(), live_sink.size());
  for (size_t i = 0; i < live_sink.size(); ++i) {
    EXPECT_EQ(recovered_sink[i], live_sink[i]) << "sink row " << i;
  }
  // The terminal stream replays whole as well (it was never drained).
  EXPECT_EQ((*recovered.store(2).streams().Drain("sOut")).size(),
            static_cast<size_t>(kBefore + kAfter));
}

TEST(PlacedRecoveryTest, ReconciliationReforwardsUndeliveredBatches) {
  std::string ckpt_dir = MakeDir("reconcile_ckpt");
  TopologyBuilder builder = PipelineBuilder();
  builder.AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}),
                   Placement::Pinned(0))
      .AddStage(Node("middle", SpKind::kInterior, {"sA"}, {"sB"}),
                Placement::Pinned(1))
      .AddStage(Node("last", SpKind::kInterior, {"sB"}, {"sOut"}),
                Placement::Pinned(1));
  Result<Topology> topo = builder.Build();
  ASSERT_TRUE(topo.ok());

  {
    // Inline (never started): the border transaction commits and the
    // channel forwards, but the delivery only sits in partition 1's queue —
    // the checkpoint captures a pending raw batch and an empty cursor, and
    // the queued delivery dies with the cluster.
    Cluster cluster(2);
    ASSERT_TRUE(cluster.Deploy(*topo).ok());
    TxnOutcome out = cluster.partition(0).RunInline(
        Invocation{"ingest", KeyVal(7, 7), /*batch_id=*/1});
    ASSERT_TRUE(out.committed());
    ASSERT_EQ((*cluster.store(0).streams().PendingBatches("sA")).size(), 1u);
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
  }

  Cluster recovered(2);
  ASSERT_TRUE(recovered.Deploy(*topo).ok());
  Status st = recovered.Recover(ckpt_dir, "");
  ASSERT_TRUE(st.ok()) << st.ToString();
  recovered.Start();
  recovered.WaitIdle();
  recovered.Stop();

  // The lost delivery was re-forwarded — exactly once.
  std::vector<Tuple> rows = SinkRows(recovered.store(1));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], KeyVal(7, 107));
  EXPECT_TRUE((*recovered.store(0).streams().PendingBatches("sA")).empty());
}

// ---- Placed Linear Road ----

TEST(PlacedLinearRoadTest, KeyedIngestFeedsPinnedRollupThroughChannel) {
  LinearRoadConfig config;
  config.num_xways = 4;
  config.vehicles_per_xway = 10;
  config.duration_sec = 130;  // crosses two minute boundaries
  Result<Topology> topo = BuildPlacedLinearRoadTopology(config, 1);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_EQ(topo->channels().size(), 1u);
  EXPECT_EQ(topo->channels()[0].stream, std::string(kLinearRoadMinuteStream));

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.Deploy(*topo).ok());
  cluster.Start();

  ClusterInjector::Options inj_opts;
  inj_opts.key_column = 2;  // x-way
  ClusterInjector injector(&cluster, "position_report", inj_opts);
  LinearRoadGenerator gen(config);
  for (int s = 0; s < config.duration_sec; ++s) {
    for (const PositionReport& r : gen.NextSecond()) {
      injector.InjectAsync(r.ToTuple());
    }
  }
  cluster.WaitIdle();
  cluster.Stop();

  // The rollup ran only on its pinned partition, exactly once per minute
  // (channel lanes from both ingest partitions deliver markers; the dedupe
  // row absorbs the duplicates).
  EXPECT_FALSE(cluster.store(0).partition().HasProcedure("minute_rollup"));
  ASSERT_TRUE(cluster.store(1).partition().HasProcedure("minute_rollup"));
  Table* segstats = *cluster.store(1).catalog().GetTable("lr_segstats");
  EXPECT_GT(segstats->row_count(), 0u);
  EXPECT_EQ((*cluster.store(0).catalog().GetTable("lr_segstats"))->row_count(),
            0u);
  // Vehicles still route by x-way to their owning partitions.
  for (size_t p = 0; p < 2; ++p) {
    Table* vehicles = *cluster.store(p).catalog().GetTable("lr_vehicles");
    EXPECT_EQ(vehicles->row_count(),
              static_cast<size_t>(config.num_xways / 2 *
                                  config.vehicles_per_xway));
  }
  uint64_t forwarded = 0;
  for (const auto& channel : cluster.channels()) {
    forwarded += channel->stats().deliveries;
  }
  EXPECT_GT(forwarded, 0u);
}

// ---- Command-log rotation at the coordinated checkpoint ----

TEST(LogRotationTest, CheckpointRotatesLogsAndRecoveryFollowsTheEpoch) {
  std::string ckpt_dir = MakeDir("rot_ckpt");
  std::string log_dir = MakeDir("rot_logs");

  Result<Topology> everywhere =
      BuildPipeline(Placement::Everywhere(), Placement::Everywhere(),
                    Placement::Everywhere());
  ASSERT_TRUE(everywhere.ok());

  std::vector<Tuple> live_sink;
  {
    Cluster::Options opts;
    opts.num_partitions = 2;
    opts.log_dir = log_dir;
    opts.log_sync = false;
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.Deploy(*everywhere).ok());
    cluster.Start();
    StreamInjector inject(&cluster.partition(0), "ingest");
    for (int i = 0; i < 10; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();

    // First checkpoint: epoch 1 files appear, the unbounded epoch-0 files
    // are deleted once the manifest is durable.
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    EXPECT_TRUE(FileExists(log_dir + "/partition-0.e1.log"));
    EXPECT_TRUE(FileExists(log_dir + "/partition-1.e1.log"));
    EXPECT_FALSE(FileExists(log_dir + "/partition-0.log"));
    EXPECT_FALSE(FileExists(log_dir + "/partition-1.log"));

    for (int i = 10; i < 20; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();

    // Second checkpoint: rotation advances, the previous epoch goes away.
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    EXPECT_TRUE(FileExists(log_dir + "/partition-0.e2.log"));
    EXPECT_FALSE(FileExists(log_dir + "/partition-0.e1.log"));

    // Post-checkpoint tail lands in the new epoch and replays from it.
    for (int i = 20; i < 30; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();
    live_sink = SinkRows(cluster.store(0));
    for (const Tuple& row : SinkRows(cluster.store(1))) {
      live_sink.push_back(row);
    }
    cluster.Stop();
  }

  Cluster recovered(2);
  ASSERT_TRUE(recovered.Deploy(*everywhere).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<Tuple> recovered_sink = SinkRows(recovered.store(0));
  for (const Tuple& row : SinkRows(recovered.store(1))) {
    recovered_sink.push_back(row);
  }
  ASSERT_EQ(recovered_sink.size(), live_sink.size());
  for (size_t i = 0; i < live_sink.size(); ++i) {
    EXPECT_EQ(recovered_sink[i], live_sink[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace sstore
