// Differential/property tests: random workloads executed both through the
// library and through trivially-correct reference implementations.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "query/executor.h"
#include "query/expr.h"
#include "storage/table.h"
#include "streaming/injector.h"
#include "streaming/sstore.h"

namespace sstore {
namespace {

Schema KvSchema() {
  return Schema({{"k", ValueType::kBigInt}, {"v", ValueType::kBigInt}});
}

/// Reference model: a plain map with the same semantics as a table with a
/// unique index on k.
class ModelKv {
 public:
  bool Insert(int64_t k, int64_t v) { return map_.emplace(k, v).second; }
  bool Erase(int64_t k) { return map_.erase(k) > 0; }
  std::optional<int64_t> Get(int64_t k) const {
    auto it = map_.find(k);
    return it == map_.end() ? std::nullopt : std::make_optional(it->second);
  }
  size_t size() const { return map_.size(); }
  const std::map<int64_t, int64_t>& map() const { return map_; }

 private:
  std::map<int64_t, int64_t> map_;
};

class RandomOpsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomOpsTest, TableMatchesModelUnderRandomInsertDeleteUpdate) {
  Rng rng(GetParam());
  Table table("t", KvSchema());
  ASSERT_TRUE(table.CreateIndex("pk", {"k"}, true).ok());
  ModelKv model;
  Executor exec;

  for (int step = 0; step < 2000; ++step) {
    int64_t k = rng.NextRange(0, 99);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      int64_t v = rng.NextRange(0, 1'000'000);
      Result<RowId> rid = exec.Insert(&table, {Value::BigInt(k), Value::BigInt(v)});
      bool model_ok = model.Insert(k, v);
      EXPECT_EQ(rid.ok(), model_ok) << "insert divergence at step " << step;
    } else if (dice < 0.75) {
      Result<size_t> n = exec.Delete(&table, Eq(Col(0), LitInt(k)));
      ASSERT_TRUE(n.ok());
      bool model_ok = model.Erase(k);
      EXPECT_EQ(*n == 1, model_ok) << "delete divergence at step " << step;
    } else {
      int64_t v = rng.NextRange(0, 1'000'000);
      Result<size_t> n =
          exec.Update(&table, Eq(Col(0), LitInt(k)), {{1, LitInt(v)}});
      ASSERT_TRUE(n.ok());
      if (model.Get(k).has_value()) {
        EXPECT_EQ(*n, 1u);
        model.Insert(k, 0);  // no-op (exists)
        model.Erase(k);
        model.Insert(k, v);
      } else {
        EXPECT_EQ(*n, 0u);
      }
    }
    ASSERT_EQ(table.row_count(), model.size());
  }

  // Full-content comparison at the end.
  for (const auto& [k, v] : model.map()) {
    Result<std::vector<Tuple>> rows =
        exec.IndexScan(&table, "pk", {Value::BigInt(k)});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u) << "key " << k;
    EXPECT_EQ((*rows)[0][1], Value::BigInt(v)) << "key " << k;
  }
}

TEST_P(RandomOpsTest, AbortedTransactionsLeaveNoTrace) {
  // Random mutation batches run inside a transaction-like undo scope; half
  // are rolled back, and rollback must restore the exact previous state.
  Rng rng(GetParam() ^ 0xabcdef);
  SStore store;
  Table* table = *store.catalog().CreateTable("t", KvSchema());
  ASSERT_TRUE(table->CreateIndex("pk", {"k"}, true).ok());

  auto mutate = std::make_shared<LambdaProcedure>([&rng](ProcContext& ctx) {
    SSTORE_ASSIGN_OR_RETURN(Table * t, ctx.table("t"));
    int ops = static_cast<int>(rng.NextRange(1, 8));
    for (int i = 0; i < ops; ++i) {
      int64_t k = rng.NextRange(0, 30);
      double dice = rng.NextDouble();
      if (dice < 0.5) {
        // Best-effort insert; duplicates are fine inside the txn body.
        Result<RowId> rid =
            ctx.exec().Insert(t, {Value::BigInt(k), Value::BigInt(i)});
        (void)rid;
      } else if (dice < 0.75) {
        SSTORE_ASSIGN_OR_RETURN(size_t n,
                                ctx.exec().Delete(t, Eq(Col(0), LitInt(k))));
        (void)n;
      } else {
        SSTORE_ASSIGN_OR_RETURN(
            size_t n,
            ctx.exec().Update(t, Eq(Col(0), LitInt(k)), {{1, LitInt(7)}}));
        (void)n;
      }
    }
    if (ctx.params()[0].as_int64() == 1) {
      return Status::Aborted("coin flip");
    }
    return Status::OK();
  });
  ASSERT_TRUE(store.partition().RegisterProcedure("mutate", SpKind::kOltp, mutate).ok());

  auto snapshot_state = [&] {
    std::map<int64_t, int64_t> out;
    table->ForEach([&](RowId, const Tuple& row, const RowMeta&) {
      out[row[0].as_int64()] = row[1].as_int64();
      return true;
    });
    return out;
  };

  for (int round = 0; round < 300; ++round) {
    bool abort = rng.NextBool(0.5);
    std::map<int64_t, int64_t> before = snapshot_state();
    TxnOutcome out =
        store.partition().ExecuteSync("mutate", {Value::BigInt(abort ? 1 : 0)});
    if (abort) {
      EXPECT_TRUE(out.status.IsAborted());
      EXPECT_EQ(snapshot_state(), before) << "rollback incomplete, round "
                                          << round;
    }
    // Committed rounds may or may not change state (duplicate inserts abort
    // too); either way the table must stay consistent with its index.
    std::map<int64_t, int64_t> now = snapshot_state();
    for (const auto& [k, v] : now) {
      Executor exec;
      Result<std::vector<Tuple>> rows =
          exec.IndexScan(table, "pk", {Value::BigInt(k)});
      ASSERT_TRUE(rows.ok());
      ASSERT_EQ(rows->size(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsTest,
                         ::testing::Values(1ull, 42ull, 1337ull, 0xdeadbeefull));

class RandomAggTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAggTest, AggregatesMatchReferenceComputation) {
  Rng rng(GetParam());
  Table table("t", KvSchema());
  Executor exec;
  std::map<int64_t, std::vector<int64_t>> reference;
  int rows = static_cast<int>(rng.NextRange(0, 200));
  for (int i = 0; i < rows; ++i) {
    int64_t k = rng.NextRange(0, 8);
    int64_t v = rng.NextRange(-50, 50);
    ASSERT_TRUE(exec.Insert(&table, {Value::BigInt(k), Value::BigInt(v)}).ok());
    reference[k].push_back(v);
  }
  AggregateSpec spec;
  spec.table = &table;
  spec.group_by = {0};
  spec.aggregates = {{AggFunc::kCount, 1},
                     {AggFunc::kSum, 1},
                     {AggFunc::kMin, 1},
                     {AggFunc::kMax, 1}};
  Result<std::vector<Tuple>> groups = exec.Aggregate(spec);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), reference.size());
  for (const Tuple& g : *groups) {
    const std::vector<int64_t>& vals = reference[g[0].as_int64()];
    int64_t sum = 0, mn = vals[0], mx = vals[0];
    for (int64_t v : vals) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ(g[1], Value::BigInt(static_cast<int64_t>(vals.size())));
    EXPECT_EQ(g[2], Value::BigInt(sum));
    EXPECT_EQ(g[3], Value::BigInt(mn));
    EXPECT_EQ(g[4], Value::BigInt(mx));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAggTest,
                         ::testing::Values(3ull, 7ull, 1001ull, 424242ull));

TEST(RandomWorkflowScheduleTest, RandomDagsAlwaysProduceCorrectSchedules) {
  // Generate random 4-node DAGs, deploy them with pass-through procedures,
  // run several rounds, and validate the recorded schedule against the
  // paper's two ordering constraints.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 7919);
    SStore store;
    Schema num({{"x", ValueType::kBigInt}});

    // Node 0 is the border; nodes 1..3 each pick one upstream node.
    std::vector<int> upstream = {-1};
    for (int n = 1; n < 4; ++n) {
      upstream.push_back(static_cast<int>(rng.NextBounded(n)));
    }
    auto stream_name = [](int from, int to) {
      return "e" + std::to_string(from) + "_" + std::to_string(to);
    };
    Workflow wf("random");
    for (int n = 0; n < 4; ++n) {
      std::vector<std::string> ins, outs;
      if (n > 0) ins.push_back(stream_name(upstream[n], n));
      for (int m = n + 1; m < 4; ++m) {
        if (upstream[m] == n) outs.push_back(stream_name(n, m));
      }
      for (const std::string& s : outs) {
        ASSERT_TRUE(store.streams().DefineStream(s, num).ok());
      }
      std::string proc = "n" + std::to_string(n);
      SStore* sp = &store;
      std::vector<std::string> outs_copy = outs;
      std::string in_copy = ins.empty() ? "" : ins[0];
      auto body = std::make_shared<LambdaProcedure>(
          [sp, in_copy, outs_copy](ProcContext& ctx) {
            std::vector<Tuple> rows;
            if (in_copy.empty()) {
              rows.push_back(ctx.params());
            } else {
              SSTORE_ASSIGN_OR_RETURN(
                  rows, sp->streams().BatchContents(in_copy, ctx.batch_id()));
            }
            for (const std::string& out : outs_copy) {
              SSTORE_RETURN_NOT_OK(ctx.EmitToStream(out, rows));
            }
            return Status::OK();
          });
      ASSERT_TRUE(store.partition()
                      .RegisterProcedure(
                          proc, n == 0 ? SpKind::kBorder : SpKind::kInterior,
                          body)
                      .ok());
      WorkflowNode node;
      node.proc = proc;
      node.kind = n == 0 ? SpKind::kBorder : SpKind::kInterior;
      node.input_streams = ins;
      node.output_streams = outs;
      ASSERT_TRUE(wf.AddNode(node).ok());
    }
    ASSERT_TRUE(store.DeployWorkflow(wf).ok());

    std::vector<ScheduleEvent> schedule;
    store.partition().AddCommitHook(
        [&schedule](Partition&, const TransactionExecution& te) {
          schedule.push_back({te.proc_name(), te.batch_id()});
        });

    StreamInjector injector(&store.partition(), "n0");
    for (int r = 0; r < 10; ++r) {
      ASSERT_TRUE(injector.InjectSync({Value::BigInt(r)}).committed());
    }
    EXPECT_EQ(schedule.size(), 40u) << "seed " << seed;
    EXPECT_TRUE(ValidateSchedule(wf, schedule).ok()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sstore
