#include "chaos_harness.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "cluster/cluster.h"
#include "cluster/cluster_injector.h"
#include "cluster/stream_channel.h"
#include "cluster/topology.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "server/client.h"
#include "server/wire_server.h"
#include "streaming/injector.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace chaos {

DeploymentPlan ChaosVoterDeployment(const VoterClusterConfig& config) {
  DeploymentPlan plan = BuildVoterClusterDeployment(config);
  Schema kv({{"key", ValueType::kBigInt}, {"val", ValueType::kBigInt}});
  plan.CreateTable("chaos_kv", kv).RegisterProcedure(
      "chaos_put", SpKind::kBorder,
      std::make_shared<LambdaProcedure>([](ProcContext& ctx) -> Status {
        SSTORE_ASSIGN_OR_RETURN(Table * t, ctx.table("chaos_kv"));
        SSTORE_ASSIGN_OR_RETURN(RowId rid, ctx.exec().Insert(t, ctx.params()));
        (void)rid;
        return Status::OK();
      }));
  return plan;
}

namespace {

std::string TempDirFor(const std::string& tag, const std::string& leaf) {
  static const std::string pid = std::to_string(::getpid());
  const char* base = std::getenv("TMPDIR");
  std::string path = std::string(base != nullptr ? base : "/tmp") +
                     "/sstore_chaos_" + pid + "_" + tag + "_" + leaf;
  ::mkdir(path.c_str(), 0755);
  return path;
}

// Sites a wire-flavor schedule may arm. Rebalance sites join the pool only
// when the schedule actually runs a rebalance, so every armed site has a
// code path that can reach it.
const char* const kWireSites[] = {
    "wire.accept",      "wire.read.short",        "wire.read.eagain",
    "wire.read.reset",  "wire.write.short",       "wire.shed.stats",
    "wire.client.flush.short",
};
const char* const kRebalanceSites[] = {
    "rebalance.before_flip",     "rebalance.after_flip",
    "rebalance.mid_migration",   "rebalance.before_manifest",
    "rebalance.after_manifest",
};
const char* const kChannelSites[] = {
    "channel.forward.drop",
    "channel.forward.duplicate",
    "channel.ack.stall",
    "channel.crash.before_gc",
};

FaultPick PickFor(Rng& rng, const std::string& site,
                  const std::string& action) {
  FaultPick pick;
  pick.site = site;
  pick.action = action;
  pick.skip = static_cast<int>(rng.NextBounded(6));
  static const int kCounts[] = {1, 1, 2, 4, -1};
  pick.count = kCounts[rng.NextBounded(5)];
  return pick;
}

Status Arm(const Schedule& s) {
  failpoint::ResetAll();
  size_t armed = 0;
  SSTORE_RETURN_NOT_OK(failpoint::ParseSpec(s.Spec(), &armed));
  if (armed != s.picks.size()) {
    return Status::Internal("schedule armed " + std::to_string(armed) +
                            " of " + std::to_string(s.picks.size()) +
                            " picks");
  }
  return Status::OK();
}

// ---- Wire flavor -----------------------------------------------------

// One client's pipelined vote loop. Uses futures + a deadline instead of
// blocking Call(): an armed fault (peer reset, a crashed rebalance leaving
// a never-started partition holding routed work) may mean a response never
// comes, and a chaos schedule must not hang the harness.
int64_t RunVoteClient(uint16_t port, uint64_t seed, int requests,
                      int64_t contestants) {
  Result<std::unique_ptr<WireClient>> client =
      WireClient::Connect({"127.0.0.1", port});
  if (!client.ok()) return 0;
  Rng rng(seed);
  int64_t acked = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
  for (int i = 0; i < requests; ++i) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(contestants)));
    WireFuturePtr future = (*client)->SubmitAsync(
        "vc_vote", {Value::BigInt(k)}, Value::BigInt(k));
    if (!(*client)->Flush().ok()) break;
    const WireResult* result = nullptr;
    while (!future->TryGet(&result)) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (result == nullptr) break;  // deadline: response will never come
    if (!result->transport.ok()) break;
    if (result->committed()) ++acked;
  }
  (*client)->Close();
  return acked;
}

// Split-safe vote conservation. VoterClusterApp::CheckInvariant reads each
// contestant's count from the key's *current* owner, but vc_contestants is
// replicated and never migrates: after a successful split, votes applied
// before the flip live on the old owner's copy while reads consult the new
// owner. Summing every copy's delta from the seed counts each committed
// vote exactly once no matter how often ownership moved.
Status CheckVoteConservation(Cluster& cluster,
                             const VoterClusterConfig& config,
                             const VoterClusterApp& app) {
  int64_t deltas = 0;
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    SSTORE_ASSIGN_OR_RETURN(
        Table * t, cluster.store(p).catalog().GetTable("vc_contestants"));
    t->ForEach([&](RowId, const Tuple& row, const RowMeta&) {
      deltas += row[1].as_int64() - config.initial_votes;
      return true;
    });
  }
  SSTORE_ASSIGN_OR_RETURN(int64_t txns, app.TotalVoteTxns());
  if (deltas != txns) {
    return Status::Internal("vote conservation broken: contestant deltas " +
                            std::to_string(deltas) + " != counted txns " +
                            std::to_string(txns));
  }
  return Status::OK();
}

Status VerifyVoterRecovery(const Cluster::Options& opts,
                           const VoterClusterConfig& config,
                           const std::string& ckpt_dir,
                           const std::string& log_dir, int64_t acked) {
  Cluster recovered(opts);
  VoterClusterApp app(&recovered, config);
  SSTORE_RETURN_NOT_OK(recovered.Deploy(ChaosVoterDeployment(config)));
  SSTORE_RETURN_NOT_OK(recovered.Recover(ckpt_dir, log_dir));
  SSTORE_RETURN_NOT_OK(CheckVoteConservation(recovered, config, app));
  SSTORE_ASSIGN_OR_RETURN(int64_t txns, app.TotalVoteTxns());
  if (txns < acked) {
    return Status::Internal(
        "acked-commits invariant broken: clients saw " +
        std::to_string(acked) + " committed votes but only " +
        std::to_string(txns) + " are durable after recovery");
  }
  return Status::OK();
}

Status RunWireSchedule(const Schedule& s, const std::string& tag) {
  std::string ckpt_dir = TempDirFor(tag, "ckpt");
  std::string log_dir = TempDirFor(tag, "logs");
  VoterClusterConfig config;
  config.num_contestants = 8;
  config.initial_votes = 1000;

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_sync = false;

  int64_t acked = 0;
  for (int gen = 0; gen < s.generations; ++gen) {
    Cluster::Options live = opts;
    live.log_dir = log_dir;
    Cluster cluster(live);
    VoterClusterApp app(&cluster, config);
    SSTORE_RETURN_NOT_OK(cluster.Deploy(ChaosVoterDeployment(config)));
    if (gen > 0) {
      SSTORE_RETURN_NOT_OK(cluster.Recover(ckpt_dir, log_dir));
      SSTORE_RETURN_NOT_OK(CheckVoteConservation(cluster, config, app));
      SSTORE_ASSIGN_OR_RETURN(int64_t txns, app.TotalVoteTxns());
      if (txns < acked) {
        return Status::Internal("gen " + std::to_string(gen) +
                                ": durable txns " + std::to_string(txns) +
                                " < acked " + std::to_string(acked));
      }
    }
    cluster.Start();
    if (gen == 0) {
      // Baseline cut so every later recovery has a manifest to land on.
      SSTORE_RETURN_NOT_OK(cluster.Checkpoint(ckpt_dir));
    }
    if (s.with_checkpointer) {
      Checkpointer::Options copts;
      copts.dir = ckpt_dir;
      copts.interval_ms = 2;
      copts.poll_ms = 1;
      copts.quiesce_timeout_ms = 5;
      copts.initial_backoff_ms = 1;
      copts.max_backoff_ms = 10;
      SSTORE_RETURN_NOT_OK(cluster.StartCheckpointer(copts));
    }

    // Rows for the concurrent split to migrate, injected before any fault is
    // armed: chaos_kv starts empty, so these are exactly the rows the
    // cutover moves (vc_contestants is replicated and must never migrate).
    if (s.with_rebalance) {
      ClusterInjector seeder(&cluster, "chaos_put");
      std::vector<Tuple> batch;
      for (int64_t k = 0; k < 24; ++k) {
        batch.push_back({Value::BigInt(k), Value::BigInt(gen)});
      }
      seeder.InjectBatchAsync(std::move(batch)).Wait();
      cluster.WaitIdle();
    }

    SSTORE_RETURN_NOT_OK(Arm(s));

    WireServer::Options server_opts;
    server_opts.drain_timeout_ms = 300;  // crashed schedules must not stall
    WireServer server(&cluster, server_opts);
    Status started = server.Start();
    if (!started.ok()) {
      failpoint::ResetAll();
      return started;
    }

    std::vector<std::thread> workers;
    std::vector<int64_t> per_client(static_cast<size_t>(s.clients), 0);
    for (int c = 0; c < s.clients; ++c) {
      uint64_t client_seed =
          s.seed ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(
                                                gen * 64 + c + 1));
      workers.emplace_back([&, c, client_seed] {
        per_client[static_cast<size_t>(c)] =
            RunVoteClient(server.port(), client_seed, s.requests_per_client,
                          config.num_contestants);
      });
    }

    // Concurrent control-plane churn: a keyed split racing the vote load.
    // An armed rebalance site makes this fail mid-cutover by design; the
    // flipped-but-uncommitted cluster is then treated as crashed (no
    // WaitIdle — routed work on the never-started partition cannot drain).
    bool rebalance_failed = false;
    if (s.with_rebalance) {
      RebalancePlan plan;
      plan.kind = RebalancePlan::Kind::kSplit;
      plan.source = 0;
      plan.keyed_tables = {{"chaos_kv", 0}};
      plan.checkpoint_dir = ckpt_dir;
      rebalance_failed = !cluster.Rebalance(plan).ok();
    }

    for (std::thread& t : workers) t.join();
    for (int64_t a : per_client) acked += a;

    if (s.with_checkpointer) cluster.StopCheckpointer();
    server.Stop();
    if (!rebalance_failed && !failpoint::CrashRequested()) {
      cluster.WaitIdle();
    }
    cluster.Stop();
    failpoint::ResetAll();
  }

  return VerifyVoterRecovery(opts, config, ckpt_dir, log_dir, acked);
}

// ---- Channel flavor ---------------------------------------------------

/// Pinned border on partition 0 feeding a keyed consumer through a channel:
/// the randomized channel faults hit the forward/ack/GC path while the
/// exactly-once contract must hold across crash/recover generations.
Result<Topology> ChaosChannelTopology() {
  Schema kv({{"key", ValueType::kBigInt}, {"val", ValueType::kBigInt}});
  TopologyBuilder topo("chaos_pipeline");
  WorkflowNode ingest_node;
  ingest_node.proc = "ingest";
  ingest_node.kind = SpKind::kBorder;
  ingest_node.output_streams = {"sA"};
  WorkflowNode apply_node;
  apply_node.proc = "apply";
  apply_node.kind = SpKind::kInterior;
  apply_node.input_streams = {"sA"};
  topo.DefineStream("sA", kv)
      .CreateTable("sink", kv)
      .RegisterProcedure(
          "ingest", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            return ctx.EmitToStream("sA", {ctx.params()});
          }))
      .RegisterProcedure(
          "apply", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>(
                [bound](ProcContext& ctx) -> Status {
                  SSTORE_ASSIGN_OR_RETURN(
                      std::vector<Tuple> rows,
                      bound->streams().BatchContents("sA", ctx.batch_id()));
                  SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
                  for (const Tuple& row : rows) {
                    SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                            ctx.exec().Insert(sink, row));
                    (void)rid;
                  }
                  return Status::OK();
                });
          })
      .AddStage(ingest_node, Placement::Pinned(0))
      .AddStage(apply_node, Placement::Keyed(0));
  return topo.Build();
}

/// sink keys across all partitions; Internal if any key appears twice.
Result<std::vector<int64_t>> SinkKeysOnce(Cluster& cluster) {
  std::map<int64_t, int> counts;
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    SSTORE_ASSIGN_OR_RETURN(Table * t,
                            cluster.store(p).catalog().GetTable("sink"));
    t->ForEach(
        [&](RowId, const Tuple& row, const RowMeta&) {
          ++counts[row[0].as_int64()];
          return true;
        },
        /*include_staged=*/true);
  }
  std::vector<int64_t> keys;
  keys.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    if (count != 1) {
      return Status::Internal("sink key " + std::to_string(key) +
                              " delivered " + std::to_string(count) +
                              " times (exactly-once broken)");
    }
    keys.push_back(key);
  }
  return keys;
}

Status ExpectSinkEquals(Cluster& cluster,
                        const std::vector<int64_t>& committed) {
  SSTORE_ASSIGN_OR_RETURN(std::vector<int64_t> keys, SinkKeysOnce(cluster));
  if (keys != committed) {
    return Status::Internal(
        "sink holds " + std::to_string(keys.size()) + " keys, expected " +
        std::to_string(committed.size()) + " committed-ingest keys");
  }
  return Status::OK();
}

Status RunChannelSchedule(const Schedule& s, const std::string& tag) {
  std::string ckpt_dir = TempDirFor(tag, "ckpt");
  std::string log_dir = TempDirFor(tag, "logs");
  SSTORE_ASSIGN_OR_RETURN(Topology topo, ChaosChannelTopology());

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  opts.log_sync = false;

  std::vector<int64_t> committed;  // keys whose ingest txn committed
  int64_t next_key = 0;
  int64_t next_batch_id = 1;
  for (int gen = 0; gen < s.generations; ++gen) {
    Cluster::Options live = opts;
    live.log_dir = log_dir;
    Cluster cluster(live);
    SSTORE_RETURN_NOT_OK(cluster.Deploy(topo));
    if (gen > 0) {
      // Recovery re-forwards batches a fault left pending; the consumer
      // cursor suppresses anything already delivered. After the queues
      // drain, the sink must hold exactly the committed keys, once each.
      SSTORE_RETURN_NOT_OK(cluster.Recover(ckpt_dir, log_dir));
      cluster.Start();
      cluster.WaitIdle();
      SSTORE_RETURN_NOT_OK(ExpectSinkEquals(cluster, committed));
    } else {
      cluster.Start();
      SSTORE_RETURN_NOT_OK(cluster.Checkpoint(ckpt_dir));
    }

    SSTORE_RETURN_NOT_OK(Arm(s));

    StreamInjector inject(&cluster.partition(0), "ingest");
    inject.ResumeBatchIdsAt(next_batch_id);
    for (int i = 0; i < s.requests_per_client; ++i) {
      int64_t key = next_key++;
      TxnOutcome out = inject.InjectSync(
          {Value::BigInt(key), Value::BigInt(gen)});
      if (out.committed()) committed.push_back(key);
    }
    next_batch_id += s.requests_per_client;

    // Safe under every channel fault: a dropped forward created no tickets
    // and a stalled ack still completed its delivery tickets, so WaitIdle
    // terminates; it only waits out in-flight deliveries.
    cluster.WaitIdle();
    cluster.Stop();
    failpoint::ResetAll();
  }

  // Final generation: clean recovery, the full committed set exactly once.
  Cluster recovered(opts);
  SSTORE_RETURN_NOT_OK(recovered.Deploy(topo));
  SSTORE_RETURN_NOT_OK(recovered.Recover(ckpt_dir, log_dir));
  recovered.Start();
  recovered.WaitIdle();
  recovered.Stop();
  return ExpectSinkEquals(recovered, committed);
}

}  // namespace

std::string Schedule::Spec() const {
  std::string spec;
  for (const FaultPick& pick : picks) {
    if (!spec.empty()) spec += ";";
    spec += pick.site + "=" + pick.action;
    if (pick.skip > 0) spec += "@" + std::to_string(pick.skip);
    if (pick.count != 1) spec += "x" + std::to_string(pick.count);
  }
  return spec;
}

std::string Schedule::Describe() const {
  std::string out = wire_flavor ? "wire" : "channel";
  out += " gens=" + std::to_string(generations);
  if (wire_flavor) {
    out += " clients=" + std::to_string(clients);
    if (with_checkpointer) out += " +checkpointer";
    if (with_rebalance) out += " +rebalance";
  }
  out += " reqs=" + std::to_string(requests_per_client);
  out += " spec=\"" + Spec() + "\"";
  return out;
}

Schedule MakeSchedule(uint64_t seed) {
  Rng rng(seed);
  Schedule s;
  s.seed = seed;
  s.wire_flavor = rng.NextBool(0.65);
  s.generations = 2 + static_cast<int>(rng.NextBounded(2));
  if (s.wire_flavor) {
    s.clients = 1 + static_cast<int>(rng.NextBounded(3));
    s.requests_per_client = 16 + static_cast<int>(rng.NextBounded(25));
    s.with_checkpointer = rng.NextBool(0.4);
    s.with_rebalance = rng.NextBool(0.4);

    std::vector<std::string> pool(std::begin(kWireSites),
                                  std::end(kWireSites));
    size_t n = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < n && !pool.empty(); ++i) {
      size_t at = rng.NextBounded(pool.size());
      s.picks.push_back(PickFor(rng, pool[at], "error"));
      pool.erase(pool.begin() + static_cast<long>(at));
    }
    if (s.with_rebalance && rng.NextBool(0.7)) {
      const char* site = kRebalanceSites[rng.NextBounded(
          std::size(kRebalanceSites))];
      // Crash at a rebalance step, occasionally a plain error; both abort
      // the cutover, crash additionally marks the process dead.
      FaultPick pick =
          PickFor(rng, site, rng.NextBool(0.6) ? "crash" : "error");
      pick.skip = 0;  // one rebalance attempt per generation: fire on it
      pick.count = 1;
      s.picks.push_back(pick);
    }
  } else {
    s.requests_per_client = 12 + static_cast<int>(rng.NextBounded(21));
    std::vector<std::string> pool(std::begin(kChannelSites),
                                  std::end(kChannelSites));
    size_t n = 1 + rng.NextBounded(2);
    for (size_t i = 0; i < n && !pool.empty(); ++i) {
      size_t at = rng.NextBounded(pool.size());
      FaultPick pick = PickFor(rng, pool[at], "error");
      if (pick.site == "channel.forward.drop") {
        // A lost forward means the forwarder died: everything after it on
        // the lane is lost too. A finite count would resurrect mid-stream
        // and deliver out of order, which the per-lane FIFO contract
        // (and its high-water-mark cursor) is explicitly not built for.
        pick.count = -1;
      }
      s.picks.push_back(pick);
      pool.erase(pool.begin() + static_cast<long>(at));
    }
  }
  return s;
}

Status RunSchedule(const Schedule& schedule, const std::string& dir_tag) {
  Status st = schedule.wire_flavor ? RunWireSchedule(schedule, dir_tag)
                                   : RunChannelSchedule(schedule, dir_tag);
  failpoint::ResetAll();  // never leak armed sites into the next schedule
  return st;
}

bool EnvSeed(uint64_t* seed) {
  const char* env = std::getenv("SSTORE_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return false;
  *seed = std::strtoull(env, nullptr, 0);
  return true;
}

uint64_t EnvBaseSeed(uint64_t fallback) {
  const char* env = std::getenv("SSTORE_CHAOS_BASE_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

int EnvScheduleCount(int fallback) {
  const char* env = std::getenv("SSTORE_CHAOS_SCHEDULES");
  if (env == nullptr || *env == '\0') return fallback;
  int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

}  // namespace chaos
}  // namespace sstore
