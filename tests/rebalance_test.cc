// Live partition rebalancing (ISSUE 5): versioned range-capable PartitionMap
// (split/merge routing equality, manifest round-trip), Cluster::Rebalance
// (committed rows preserved byte-for-byte vs an unsplit reference, migration
// under concurrent keyed load, merge draining a retired partition),
// kill-and-Recover landing on either side of the cutover manifest — never
// between — and placed-topology channels staying exactly-once after a split.
// Also covers the decision-log rotation that rides the coordinated
// checkpoint.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cluster_injector.h"
#include "cluster/partition_map.h"
#include "cluster/stream_channel.h"
#include "cluster/topology.h"
#include "common/failpoint.h"
#include "query/expr.h"
#include "server/client.h"
#include "server/wire_server.h"
#include "streaming/injector.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace {

std::string TempPath(const std::string& name) {
  // Suites run as separate processes under `ctest -j`; a pid suffix keeps
  // their checkpoint and log directories from colliding.
  static const std::string pid = std::to_string(::getpid());
  return ::testing::TempDir() + "/sstore_rebal_" + pid + "_" + name;
}

std::string MakeDir(const std::string& name) {
  std::string path = TempPath(name);
  ::mkdir(path.c_str(), 0755);
  return path;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Schema KeyValSchema() {
  return Schema({{"key", ValueType::kBigInt}, {"val", ValueType::kBigInt}});
}

Tuple KeyVal(int64_t key, int64_t val) {
  return {Value::BigInt(key), Value::BigInt(val)};
}

/// Minimal keyed workload: a border SP inserting its (key, val) params into
/// table "kv". Injected through ClusterInjector with key_column 0, so rows
/// land on the key's owning partition.
DeploymentPlan KvPlan() {
  DeploymentPlan plan;
  plan.CreateTable("kv", KeyValSchema())
      .RegisterProcedure(
          "put", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) -> Status {
            SSTORE_ASSIGN_OR_RETURN(Table * kv, ctx.table("kv"));
            SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                    ctx.exec().Insert(kv, ctx.params()));
            (void)rid;
            return Status::OK();
          }));
  return plan;
}

std::vector<std::pair<int64_t, int64_t>> AllRows(Cluster& cluster,
                                                 const std::string& table) {
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    Table* t = *cluster.store(p).catalog().GetTable(table);
    t->ForEach(
        [&](RowId, const Tuple& row, const RowMeta&) {
          rows.emplace_back(row[0].as_int64(), row[1].as_int64());
          return true;
        },
        /*include_staged=*/true);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Every row must live on exactly the partition the map routes its key to —
/// the "no key owned by two partitions" acceptance check.
void ExpectOwnershipConsistent(Cluster& cluster, const std::string& table) {
  PartitionMap map = cluster.partition_map();
  for (size_t p = 0; p < cluster.num_partitions(); ++p) {
    Table* t = *cluster.store(p).catalog().GetTable(table);
    t->ForEach(
        [&](RowId, const Tuple& row, const RowMeta&) {
          EXPECT_EQ(map.PartitionOf(row[0]), p)
              << "key " << row[0].as_int64() << " found on partition " << p;
          return true;
        },
        /*include_staged=*/true);
  }
}

RebalancePlan SplitPlan(size_t source, const std::string& ckpt_dir) {
  RebalancePlan plan;
  plan.kind = RebalancePlan::Kind::kSplit;
  plan.source = source;
  plan.keyed_tables = {{"kv", 0}};
  plan.checkpoint_dir = ckpt_dir;
  return plan;
}

// ---- PartitionMap: routing-table refinements ----

TEST(PartitionMapTest, FreshMapRoutesLikeTheLegacyFrozenMap) {
  PartitionMap modulo(4, PartitionMap::Mode::kModulo);
  PartitionMap hash(4, PartitionMap::Mode::kHash);
  EXPECT_EQ(modulo.version(), 1u);
  for (int64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(modulo.PartitionOf(Value::BigInt(k)),
              static_cast<size_t>(k % 4));
    EXPECT_EQ(modulo.PartitionOfId(k), static_cast<size_t>(k % 4));
    EXPECT_LT(hash.PartitionOf(Value::BigInt(k)), 4u);
  }
  // Hash routing spreads: every partition owns some of a dense key space.
  std::set<size_t> seen;
  for (int64_t k = 0; k < 256; ++k) {
    seen.insert(hash.PartitionOf(Value::BigInt(k)));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PartitionMapTest, SplitRoutingEqualityForEveryKey) {
  for (PartitionMap::Mode mode :
       {PartitionMap::Mode::kModulo, PartitionMap::Mode::kHash}) {
    PartitionMap before(2, mode);
    Result<PartitionMap> split = before.WithSplit(/*source=*/0, /*target=*/2);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    EXPECT_EQ(split->version(), 2u);
    EXPECT_EQ(split->num_partitions(), 3u);

    size_t moved = 0;
    for (int64_t k = 0; k < 4096; ++k) {
      Value key = Value::BigInt(k);
      size_t old_owner = before.PartitionOf(key);
      size_t new_owner = split->PartitionOf(key);
      if (old_owner != 0) {
        // Keys not owned by the split source must not move at all.
        EXPECT_EQ(new_owner, old_owner);
      } else {
        // Keys of the split source go to the source or the new target.
        EXPECT_TRUE(new_owner == 0 || new_owner == 2)
            << "key " << k << " -> " << new_owner;
        moved += new_owner == 2 ? 1 : 0;
      }
      // Unkeyed id routing obeys the same refinement.
      size_t old_id_owner = before.PartitionOfId(k);
      size_t new_id_owner = split->PartitionOfId(k);
      if (old_id_owner != 0) {
        EXPECT_EQ(new_id_owner, old_id_owner);
      } else {
        EXPECT_TRUE(new_id_owner == 0 || new_id_owner == 2);
      }
    }
    // The midpoint split moves about half of the source's keys.
    EXPECT_GT(moved, 512u);
    EXPECT_LT(moved, 1536u);
  }
}

TEST(PartitionMapTest, MergeRestoresSplitRoutingAndRetires) {
  PartitionMap before(2, PartitionMap::Mode::kModulo);
  PartitionMap split = *before.WithSplit(0, 2);
  EXPECT_TRUE(split.OwnsKeys(2));

  // Merging the split-off target back into the source restores routing.
  Result<PartitionMap> merged = split.WithMerge(/*source=*/2, /*into=*/0);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->version(), 3u);
  EXPECT_FALSE(merged->OwnsKeys(2));
  // The retired id stays valid (stores keep their slots) …
  EXPECT_EQ(merged->num_partitions(), 3u);
  // … and every key routes exactly as before the split.
  for (int64_t k = 0; k < 4096; ++k) {
    EXPECT_EQ(merged->PartitionOf(Value::BigInt(k)),
              before.PartitionOf(Value::BigInt(k)));
  }

  // Merging two partitions with no adjacent ranges is rejected.
  Result<PartitionMap> bad = split.WithMerge(/*source=*/1, /*into=*/2);
  EXPECT_FALSE(bad.ok());
  // A retired partition owns nothing to merge.
  Result<PartitionMap> empty = merged->WithMerge(/*source=*/2, /*into=*/0);
  EXPECT_FALSE(empty.ok());
}

TEST(PartitionMapTest, EncodeDecodeRoundTripsRefinedMaps) {
  PartitionMap map(3, PartitionMap::Mode::kHash);
  map = *map.WithSplit(1, 3);
  map = *map.WithSplit(1, 4);
  map = *map.WithMerge(4, 1);

  Result<PartitionMap> decoded = PartitionMap::Decode(map.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == map);
  for (int64_t k = 0; k < 4096; ++k) {
    EXPECT_EQ(decoded->PartitionOf(Value::BigInt(k)),
              map.PartitionOf(Value::BigInt(k)));
  }

  // Text without a map block is kNotFound (legacy manifests).
  Result<PartitionMap> none = PartitionMap::Decode("checkpoint_id 7\n");
  EXPECT_TRUE(none.status().code() == StatusCode::kNotFound);
}

// ---- Cluster::Rebalance: live split & merge ----

TEST(RebalanceTest, SplitPreservesEveryCommittedRow) {
  constexpr int kKeys = 64;
  constexpr int kRoundsBefore = 4;
  constexpr int kRoundsAfter = 4;
  std::string ckpt_dir = MakeDir("split_rows_ckpt");

  auto inject_round = [](ClusterInjector& injector, int round) {
    std::vector<Tuple> batch;
    for (int64_t k = 0; k < kKeys; ++k) {
      batch.push_back(KeyVal(k, round * kKeys + k));
    }
    injector.InjectBatchAsync(std::move(batch)).Wait();
  };

  // Reference: the same input stream into an unsplit 2-partition cluster.
  Cluster reference(2);
  ASSERT_TRUE(reference.Deploy(KvPlan()).ok());
  reference.Start();
  ClusterInjector ref_injector(&reference, "put");
  for (int r = 0; r < kRoundsBefore + kRoundsAfter; ++r) {
    inject_round(ref_injector, r);
  }
  reference.WaitIdle();
  reference.Stop();

  Cluster cluster(2);
  ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
  cluster.Start();
  ClusterInjector injector(&cluster, "put");
  for (int r = 0; r < kRoundsBefore; ++r) inject_round(injector, r);
  cluster.WaitIdle();

  RebalanceReport report;
  Status st = cluster.Rebalance(SplitPlan(0, ckpt_dir), &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(cluster.num_partitions(), 3u);
  EXPECT_EQ(report.target, 2u);
  EXPECT_EQ(report.map_version, 2u);
  EXPECT_GT(report.rows_migrated, 0u);

  for (int r = kRoundsBefore; r < kRoundsBefore + kRoundsAfter; ++r) {
    inject_round(injector, r);
  }
  cluster.WaitIdle();
  cluster.Stop();

  // Byte-equal scan vs the unsplit reference: no row lost, duplicated, or
  // mutated by the migration.
  EXPECT_EQ(AllRows(cluster, "kv"), AllRows(reference, "kv"));
  // And the new partition actually took load.
  size_t p2_rows = 0;
  (*cluster.store(2).catalog().GetTable("kv"))
      ->ForEach([&](RowId, const Tuple&, const RowMeta&) {
        ++p2_rows;
        return true;
      });
  EXPECT_GT(p2_rows, 0u);
  ExpectOwnershipConsistent(cluster, "kv");
}

TEST(RebalanceTest, SplitUnderConcurrentKeyedLoad) {
  constexpr int kThreads = 3;
  constexpr int kBatchesPerThread = 400;
  constexpr int kKeys = 97;
  std::string ckpt_dir = MakeDir("split_load_ckpt");

  Cluster cluster(2);
  ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
  cluster.Start();
  ClusterInjector::Options opts;
  opts.key_column = 0;
  opts.max_queue_depth = 512;
  ClusterInjector injector(&cluster, "put", opts);

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&injector, t] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        int64_t key = (t * kBatchesPerThread + i) % kKeys;
        injector.InjectAsync(KeyVal(key, t * kBatchesPerThread + i));
      }
    });
  }
  // Split while the producers are live: routing flips mid-stream and the
  // injector must follow the new map version.
  RebalanceReport report;
  Status st = cluster.Rebalance(SplitPlan(0, ckpt_dir), &report);
  for (auto& p : producers) p.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  cluster.WaitIdle();
  cluster.Stop();

  // Nothing lost, nothing duplicated: one row per injected batch, and the
  // value multiset is exactly the injected one.
  std::vector<std::pair<int64_t, int64_t>> rows = AllRows(cluster, "kv");
  ASSERT_EQ(rows.size(), static_cast<size_t>(kThreads * kBatchesPerThread));
  std::set<int64_t> values;
  for (const auto& [key, val] : rows) {
    EXPECT_EQ(key, val % kKeys);
    values.insert(val);
  }
  EXPECT_EQ(values.size(), rows.size());
  ExpectOwnershipConsistent(cluster, "kv");
}

TEST(RebalanceTest, BadPlanFailsBeforeTheFlip) {
  Cluster cluster(2);
  ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
  cluster.Start();

  // A typo'd table or an out-of-range key column must be rejected while
  // the old map is still the only map — not after the flip, which would
  // leave a grown cluster with unmigrated rows.
  RebalancePlan typo = SplitPlan(0, MakeDir("badplan_ckpt"));
  typo.keyed_tables = {{"kv_typo", 0}};
  EXPECT_FALSE(cluster.Rebalance(typo).ok());
  RebalancePlan bad_col = SplitPlan(0, MakeDir("badcol_ckpt"));
  bad_col.keyed_tables = {{"kv", 7}};
  EXPECT_FALSE(cluster.Rebalance(bad_col).ok());
  RebalancePlan no_dir = SplitPlan(0, "");
  EXPECT_FALSE(cluster.Rebalance(no_dir).ok());

  EXPECT_EQ(cluster.num_partitions(), 2u);
  EXPECT_EQ(cluster.partition_map().version(), 1u);
  cluster.Stop();
}

TEST(RebalanceTest, StoppedClusterExecuteSyncStillRunsInline) {
  // Cluster::ExecuteSync on a never-started cluster executes inline (the
  // seeding pattern Partition::ExecuteSync supports) instead of queueing
  // forever behind a worker that does not exist.
  Cluster cluster(2);
  ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
  TxnOutcome out = cluster.ExecuteSync("put", KeyVal(7, 70), Value::BigInt(7));
  EXPECT_TRUE(out.committed()) << out.status.ToString();
  EXPECT_EQ(AllRows(cluster, "kv").size(), 1u);
}

TEST(RebalanceTest, MergeDrainsAndRetiresThePartition) {
  constexpr int kKeys = 64;
  std::string split_dir = MakeDir("merge_split_ckpt");
  std::string merge_dir = MakeDir("merge_merge_ckpt");

  Cluster cluster(2);
  ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
  cluster.Start();
  ClusterInjector injector(&cluster, "put");
  std::vector<Tuple> batch;
  for (int64_t k = 0; k < kKeys; ++k) batch.push_back(KeyVal(k, k));
  injector.InjectBatchAsync(std::move(batch)).Wait();
  cluster.WaitIdle();

  ASSERT_TRUE(cluster.Rebalance(SplitPlan(0, split_dir)).ok());
  std::vector<std::pair<int64_t, int64_t>> before = AllRows(cluster, "kv");

  RebalancePlan merge;
  merge.kind = RebalancePlan::Kind::kMerge;
  merge.source = 2;
  merge.target = 0;
  merge.keyed_tables = {{"kv", 0}};
  merge.checkpoint_dir = merge_dir;
  RebalanceReport report;
  Status st = cluster.Rebalance(merge, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  cluster.WaitIdle();
  cluster.Stop();

  // All rows survived, the retired partition holds none of them, and
  // routing matches the pre-split assignment again.
  EXPECT_EQ(AllRows(cluster, "kv"), before);
  EXPECT_EQ((*cluster.store(2).catalog().GetTable("kv"))->row_count(), 0u);
  PartitionMap map = cluster.partition_map();
  EXPECT_FALSE(map.OwnsKeys(2));
  PartitionMap original(2);
  for (int64_t k = 0; k < 1024; ++k) {
    EXPECT_EQ(map.PartitionOf(Value::BigInt(k)),
              original.PartitionOf(Value::BigInt(k)));
  }
  ExpectOwnershipConsistent(cluster, "kv");
}

// ---- Kill-and-Recover around the cutover ----

TEST(RebalanceTest, KillAroundCutoverRecoversToExactlyOneSideOfTheManifest) {
  constexpr int kKeys = 48;
  std::string ckpt_dir = MakeDir("cutover_ckpt");
  std::string log_dir = MakeDir("cutover_logs");
  std::string old_ckpt_copy = TempPath("cutover_ckpt_pre");
  std::string old_log_copy = TempPath("cutover_logs_pre");

  std::vector<std::pair<int64_t, int64_t>> live_rows;
  {
    Cluster::Options opts;
    opts.num_partitions = 2;
    opts.log_dir = log_dir;
    opts.log_sync = false;
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
    cluster.Start();
    ClusterInjector injector(&cluster, "put");
    std::vector<Tuple> batch;
    for (int64_t k = 0; k < kKeys; ++k) batch.push_back(KeyVal(k, k));
    injector.InjectBatchAsync(std::move(batch)).Wait();
    cluster.WaitIdle();
    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    std::vector<Tuple> more;
    for (int64_t k = 0; k < kKeys; ++k) more.push_back(KeyVal(k, k + 1000));
    injector.InjectBatchAsync(std::move(more)).Wait();
    cluster.WaitIdle();

    // A kill strictly before the cutover manifest rename leaves exactly the
    // pre-rebalance files — snapshot them before rebalancing.
    std::filesystem::copy(ckpt_dir, old_ckpt_copy,
                          std::filesystem::copy_options::recursive);
    std::filesystem::copy(log_dir, old_log_copy,
                          std::filesystem::copy_options::recursive);

    ASSERT_TRUE(cluster.Rebalance(SplitPlan(0, ckpt_dir)).ok());
    std::vector<Tuple> after;
    for (int64_t k = 0; k < kKeys; ++k) after.push_back(KeyVal(k, k + 2000));
    injector.InjectBatchAsync(std::move(after)).Wait();
    cluster.WaitIdle();
    live_rows = AllRows(cluster, "kv");
    cluster.Stop();
    // "Crash": only the checkpoint dirs and logs survive.
  }

  // Kill BEFORE the manifest rename: the old manifest still names the
  // pre-split cut — recovery lands on the old map with all pre-rebalance
  // data (including the post-checkpoint log suffix).
  {
    Cluster::Options opts;
    opts.num_partitions = 2;
    Cluster recovered(opts);
    ASSERT_TRUE(recovered.Deploy(KvPlan()).ok());
    Status st = recovered.Recover(old_ckpt_copy, old_log_copy);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(recovered.num_partitions(), 2u);
    EXPECT_EQ(recovered.partition_map().version(), 1u);
    std::vector<std::pair<int64_t, int64_t>> rows = AllRows(recovered, "kv");
    EXPECT_EQ(rows.size(), static_cast<size_t>(2 * kKeys));
    ExpectOwnershipConsistent(recovered, "kv");
  }

  // Kill AFTER the manifest rename: recovery reads the post-split manifest,
  // spins up the third partition, adopts the published map, and replays the
  // post-cutover suffix — byte-equal with the pre-kill live state.
  {
    Cluster::Options opts;
    opts.num_partitions = 2;  // the original construction, as the runbook says
    Cluster recovered(opts);
    ASSERT_TRUE(recovered.Deploy(KvPlan()).ok());
    Status st = recovered.Recover(ckpt_dir, log_dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(recovered.num_partitions(), 3u);
    EXPECT_EQ(recovered.partition_map().version(), 2u);
    EXPECT_EQ(AllRows(recovered, "kv"), live_rows);
    ExpectOwnershipConsistent(recovered, "kv");

    // The recovered, grown cluster keeps serving keyed load on the new map.
    recovered.Start();
    ClusterInjector injector(&recovered, "put");
    std::vector<Tuple> batch;
    for (int64_t k = 0; k < kKeys; ++k) batch.push_back(KeyVal(k, k + 3000));
    injector.InjectBatchAsync(std::move(batch)).Wait();
    recovered.WaitIdle();
    recovered.Stop();
    EXPECT_EQ(AllRows(recovered, "kv").size(), live_rows.size() + kKeys);
    ExpectOwnershipConsistent(recovered, "kv");
  }
}

// ---- Crash at every rebalance failpoint site (ISSUE 10 kill matrix) ----

/// Keyed wire load for the chaos kill matrix: pipelined "put"s routed by
/// key, resolved with a deadline poll instead of a blocking Wait — a crash
/// mid-cutover leaves a never-started partition holding routed work, so
/// some responses never come.
int64_t RunKeyedWirePuts(uint16_t port, int requests, int64_t key_space,
                         int64_t val_base) {
  Result<std::unique_ptr<WireClient>> client =
      WireClient::Connect({"127.0.0.1", port});
  if (!client.ok()) return 0;
  int64_t acked = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  for (int i = 0; i < requests; ++i) {
    int64_t k = i % key_space;
    WireFuturePtr future = (*client)->SubmitAsync(
        "put", KeyVal(k, val_base + i), Value::BigInt(k));
    if (!(*client)->Flush().ok()) break;
    const WireResult* result = nullptr;
    while (!future->TryGet(&result)) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (result == nullptr || !result->transport.ok()) break;
    if (result->committed()) ++acked;
  }
  (*client)->Close();
  return acked;
}

TEST(RebalanceTest, CrashAtEverySiteRecoversToExactlyOneSideOfTheCutover) {
  // One entry per rebalance failpoint site: only a crash after the manifest
  // rename may recover onto the new map; everywhere else the cutover never
  // committed and recovery must land on the old one.
  const struct {
    const char* site;
    bool cutover_committed;
  } kMatrix[] = {
      {"rebalance.before_flip", false},
      {"rebalance.after_flip", false},
      {"rebalance.mid_migration", false},
      {"rebalance.before_manifest", false},
      {"rebalance.after_manifest", true},
  };
  constexpr int64_t kKeys = 48;
  constexpr int kWirePuts = 64;

  int idx = 0;
  for (const auto& step : kMatrix) {
    SCOPED_TRACE(step.site);
    failpoint::ResetAll();
    std::string tag = "killmatrix_" + std::to_string(idx++);
    std::string ckpt_dir = MakeDir(tag + "_ckpt");
    std::string log_dir = MakeDir(tag + "_logs");

    int64_t acked_wire = 0;
    {
      Cluster::Options opts;
      opts.num_partitions = 2;
      opts.log_dir = log_dir;
      opts.log_sync = false;
      Cluster cluster(opts);
      ASSERT_TRUE(cluster.Deploy(KvPlan()).ok());
      cluster.Start();

      // Acked first wave: these rows must survive whichever side of the
      // cutover recovery lands on.
      ClusterInjector injector(&cluster, "put");
      std::vector<Tuple> batch;
      for (int64_t k = 0; k < kKeys; ++k) batch.push_back(KeyVal(k, k));
      injector.InjectBatchAsync(std::move(batch)).Wait();
      cluster.WaitIdle();
      ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());

      WireServer::Options sopts;
      sopts.drain_timeout_ms = 300;
      WireServer server(&cluster, sopts);
      ASSERT_TRUE(server.Start().ok());
      std::thread load([&] {
        acked_wire = RunKeyedWirePuts(server.port(), kWirePuts, kKeys, 1000);
      });

      failpoint::Activate(step.site, failpoint::Action::kCrash);
      Status st = cluster.Rebalance(SplitPlan(0, ckpt_dir));
      EXPECT_FALSE(st.ok()) << step.site << " should have aborted the cutover";
      EXPECT_GE(failpoint::Hits(step.site), 1u);

      load.join();
      server.Stop();
      failpoint::ResetAll();
      // No WaitIdle: a crash after the flip leaves routed work parked on a
      // partition that never started.
      cluster.Stop();
    }

    Cluster::Options opts;
    opts.num_partitions = 2;
    Cluster recovered(opts);
    ASSERT_TRUE(recovered.Deploy(KvPlan()).ok());
    Status st = recovered.Recover(ckpt_dir, log_dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    if (step.cutover_committed) {
      EXPECT_EQ(recovered.num_partitions(), 3u);
      EXPECT_EQ(recovered.partition_map().version(), 2u);
    } else {
      EXPECT_EQ(recovered.num_partitions(), 2u);
      EXPECT_EQ(recovered.partition_map().version(), 1u);
    }
    ExpectOwnershipConsistent(recovered, "kv");

    // Exactly one side: every first-wave row exactly once, and at least
    // every acked wire put durable (an ack can be lost, never a commit).
    std::vector<std::pair<int64_t, int64_t>> rows = AllRows(recovered, "kv");
    int64_t first_wave = 0;
    int64_t wire_rows = 0;
    for (const auto& [key, val] : rows) {
      if (val < kKeys) ++first_wave;
      if (val >= 1000) ++wire_rows;
    }
    EXPECT_EQ(first_wave, kKeys) << "a pre-rebalance acked row went missing";
    EXPECT_GE(wire_rows, acked_wire);
  }
  failpoint::ResetAll();
}

// ---- Placed topologies: channels across a split ----

WorkflowNode Node(std::string proc, SpKind kind,
                  std::vector<std::string> inputs,
                  std::vector<std::string> outputs) {
  WorkflowNode n;
  n.proc = std::move(proc);
  n.kind = kind;
  n.input_streams = std::move(inputs);
  n.output_streams = std::move(outputs);
  return n;
}

/// Pinned border on partition 0 feeding a keyed consumer through a channel:
/// "ingest" emits into sA, "apply" runs on the key's owner and inserts into
/// "sink". The channel must keep delivering exactly-once while the key
/// space is re-partitioned under it.
Result<Topology> KeyedConsumerTopology() {
  TopologyBuilder topo("split_pipeline");
  topo.DefineStream("sA", KeyValSchema())
      .CreateTable("sink", KeyValSchema())
      .RegisterProcedure(
          "ingest", SpKind::kBorder,
          std::make_shared<LambdaProcedure>([](ProcContext& ctx) {
            return ctx.EmitToStream("sA", {ctx.params()});
          }))
      .RegisterProcedure(
          "apply", SpKind::kInterior,
          [](SStore& store) -> std::shared_ptr<StoredProcedure> {
            SStore* bound = &store;
            return std::make_shared<LambdaProcedure>(
                [bound](ProcContext& ctx) -> Status {
                  SSTORE_ASSIGN_OR_RETURN(
                      std::vector<Tuple> rows,
                      bound->streams().BatchContents("sA", ctx.batch_id()));
                  SSTORE_ASSIGN_OR_RETURN(Table * sink, ctx.table("sink"));
                  for (const Tuple& row : rows) {
                    SSTORE_ASSIGN_OR_RETURN(RowId rid,
                                            ctx.exec().Insert(sink, row));
                    (void)rid;
                  }
                  return Status::OK();
                });
          })
      .AddStage(Node("ingest", SpKind::kBorder, {}, {"sA"}),
                Placement::Pinned(0))
      .AddStage(Node("apply", SpKind::kInterior, {"sA"}, {}),
                Placement::Keyed(0));
  return topo.Build();
}

TEST(RebalanceTest, PlacedChannelsStayExactlyOnceAcrossSplitAndRecover) {
  constexpr int kBefore = 40;
  constexpr int kAfter = 40;
  std::string ckpt_dir = MakeDir("chan_ckpt");
  std::string log_dir = MakeDir("chan_logs");

  Result<Topology> topo = KeyedConsumerTopology();
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();

  std::vector<std::pair<int64_t, int64_t>> live_rows;
  {
    Cluster::Options opts;
    opts.num_partitions = 2;
    opts.routing = PartitionMap::Mode::kModulo;
    opts.log_dir = log_dir;
    opts.log_sync = false;
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.Deploy(*topo).ok());
    cluster.Start();
    StreamInjector inject(&cluster.partition(0), "ingest");
    for (int i = 0; i < kBefore; ++i) inject.InjectAsync(KeyVal(i, i));
    cluster.WaitIdle();

    // Split the keyed consumer space: partition 1's range halves onto a
    // new partition 2; its sink rows migrate with their keys.
    RebalancePlan plan;
    plan.kind = RebalancePlan::Kind::kSplit;
    plan.source = 1;
    plan.keyed_tables = {{"sink", 0}};
    plan.checkpoint_dir = ckpt_dir;
    RebalanceReport report;
    Status st = cluster.Rebalance(plan, &report);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(cluster.num_partitions(), 3u);

    for (int i = kBefore; i < kBefore + kAfter; ++i) {
      inject.InjectAsync(KeyVal(i, i));
    }
    cluster.WaitIdle();
    live_rows = AllRows(cluster, "sink");
    cluster.Stop();
  }
  // Exactly-once across the split: every batch delivered once.
  ASSERT_EQ(live_rows.size(), static_cast<size_t>(kBefore + kAfter));
  for (int i = 0; i < kBefore + kAfter; ++i) {
    EXPECT_EQ(live_rows[static_cast<size_t>(i)].first, i);
  }

  // Kill-and-recover the grown placed cluster: channels reconcile against
  // the adopted post-split map, still exactly-once.
  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster recovered(opts);
  ASSERT_TRUE(recovered.Deploy(*topo).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(recovered.num_partitions(), 3u);
  recovered.Start();
  recovered.WaitIdle();
  recovered.Stop();
  EXPECT_EQ(AllRows(recovered, "sink"), live_rows);
  ExpectOwnershipConsistent(recovered, "sink");
}

// ---- Decision-log rotation at the coordinated checkpoint ----

TEST(RebalanceTest, DecisionLogRotatesWithCheckpointAndRecovers) {
  std::string ckpt_dir = MakeDir("declog_ckpt");
  std::string log_dir = MakeDir("declog_logs");

  VoterClusterConfig config;
  config.num_contestants = 8;
  config.initial_votes = 100;
  int64_t expected_total =
      static_cast<int64_t>(config.num_contestants) * config.initial_votes;

  std::vector<int64_t> live_counts;
  {
    Cluster::Options opts;
    opts.num_partitions = 2;
    opts.routing = PartitionMap::Mode::kModulo;
    opts.log_dir = log_dir;
    opts.log_sync = false;
    Cluster cluster(opts);
    ASSERT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    VoterClusterApp app(&cluster, config);
    app.Transfer(0, 1, 10);
    cluster.WaitIdle();

    ASSERT_TRUE(cluster.Checkpoint(ckpt_dir).ok());
    // The rotation replaced the legacy decision log with the epoch file.
    EXPECT_FALSE(FileExists(log_dir + "/coord-decisions.log"));
    EXPECT_TRUE(FileExists(log_dir + "/coord-decisions.e1.log"));

    // Post-cut multi-partition traffic lands in the rotated epoch.
    app.Transfer(2, 3, 25);
    app.Transfer(1, 0, 5);
    cluster.WaitIdle();
    for (int c = 0; c < config.num_contestants; ++c) {
      live_counts.push_back(*app.Count(c));
    }
    cluster.Stop();
  }

  Cluster::Options opts;
  opts.num_partitions = 2;
  opts.routing = PartitionMap::Mode::kModulo;
  Cluster recovered(opts);
  ASSERT_TRUE(recovered.Deploy(BuildVoterClusterDeployment(config)).ok());
  Status st = recovered.Recover(ckpt_dir, log_dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  recovered.Start();
  VoterClusterApp app(&recovered, config);
  int64_t total = 0;
  for (int c = 0; c < config.num_contestants; ++c) {
    int64_t count = *app.Count(c);
    EXPECT_EQ(count, live_counts[static_cast<size_t>(c)]) << "contestant " << c;
    total += count;
  }
  EXPECT_EQ(total, expected_total);
  EXPECT_TRUE(app.CheckInvariant().ok());
  recovered.Stop();
}

}  // namespace
}  // namespace sstore
