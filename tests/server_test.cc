// Wire serving layer (src/server/): protocol round trips, batched
// pipelining, per-connection admission control (bounded in-flight + BUSY
// shedding), multi-connection load, drain-and-stop with in-flight tickets,
// and the group-commit durability counters surfaced through ClusterStats.
// Run in isolation with `ctest -L server`.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "server/client.h"
#include "server/wire_protocol.h"
#include "server/wire_server.h"
#include "workloads/voter_cluster.h"

namespace sstore {
namespace {

std::string TempPath(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return ::testing::TempDir() + "/sstore_srv_" + pid + "_" + name;
}

std::string MakeDir(const std::string& name) {
  std::string path = TempPath(name);
  ::mkdir(path.c_str(), 0755);
  return path;
}

Cluster::Options ClusterOpts(int partitions) {
  Cluster::Options opts;
  opts.num_partitions = partitions;
  // Modulo routing keeps contestant->partition assignment deterministic.
  opts.routing = PartitionMap::Mode::kModulo;
  return opts;
}

VoterClusterConfig SmallConfig() {
  VoterClusterConfig config;
  config.num_contestants = 16;
  config.initial_votes = 1000;
  return config;
}

/// Everything a serving test needs: a started voter cluster + wire server.
struct Harness {
  explicit Harness(int partitions, WireServer::Options sopts = {},
                   std::optional<Cluster::Options> copts_in = std::nullopt)
      : copts(copts_in.has_value() ? *copts_in : ClusterOpts(partitions)),
        cluster(copts),
        config(SmallConfig()),
        app(&cluster, config),
        server(&cluster, sopts) {
    EXPECT_TRUE(cluster.Deploy(BuildVoterClusterDeployment(config)).ok());
    cluster.Start();
    EXPECT_TRUE(server.Start().ok());
  }

  ~Harness() {
    server.Stop();
    cluster.Stop();
  }

  std::unique_ptr<WireClient> Connect() {
    auto client = WireClient::Connect({"127.0.0.1", server.port()});
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  Cluster::Options copts;
  Cluster cluster;
  VoterClusterConfig config;
  VoterClusterApp app;
  WireServer server;
};

// ---- Protocol framing ----

TEST(WireProtocolTest, SubmitRoundTripsThroughFrameBuffer) {
  ByteWriter w;
  Value key = Value::BigInt(7);
  EncodeSubmit(&w, 42, "vc_vote", {Value::BigInt(7), Value::String("x")}, &key,
               9);
  EncodePing(&w, 43);
  EncodeStatsRequest(&w, 44);

  WireFrameBuffer frames;
  // Feed byte-by-byte: framing must reassemble across arbitrary splits.
  for (uint8_t b : w.data()) frames.Feed(&b, 1);

  const uint8_t* payload;
  size_t len;
  auto has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok() && *has);
  WireRequest req;
  WireRequestType type = WireRequestType::kPing;
  ASSERT_TRUE(DecodeRequest(payload, len, &req, &type).ok());
  EXPECT_EQ(type, WireRequestType::kSubmit);
  EXPECT_EQ(req.request_id, 42u);
  EXPECT_EQ(req.proc, "vc_vote");
  EXPECT_EQ(req.batch_id, 9);
  ASSERT_TRUE(req.key.has_value());
  EXPECT_EQ(req.key->as_int64(), 7);
  ASSERT_EQ(req.params.size(), 2u);
  EXPECT_EQ(req.params[1].as_string(), "x");

  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok() && *has);
  ASSERT_TRUE(DecodeRequest(payload, len, &req, &type).ok());
  EXPECT_EQ(type, WireRequestType::kPing);
  EXPECT_EQ(req.request_id, 43u);

  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok() && *has);
  ASSERT_TRUE(DecodeRequest(payload, len, &req, &type).ok());
  EXPECT_EQ(type, WireRequestType::kStats);
  EXPECT_EQ(req.request_id, 44u);

  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST(WireProtocolTest, StatsResponseRoundTrip) {
  ByteWriter w;
  EncodeStatsText(&w, 9, "sstore_txn_committed_total 12\n");
  WireFrameBuffer frames;
  frames.Feed(w.data().data(), w.size());
  const uint8_t* payload;
  size_t len;
  auto has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok() && *has);
  WireResponse resp;
  ASSERT_TRUE(DecodeResponse(payload, len, &resp).ok());
  EXPECT_EQ(resp.type, WireResponseType::kStats);
  EXPECT_EQ(resp.request_id, 9u);
  EXPECT_EQ(resp.stats_text, "sstore_txn_committed_total 12\n");
}

TEST(WireProtocolTest, ResponseRoundTrip) {
  ByteWriter w;
  TxnOutcome outcome;
  outcome.status = Status::Aborted("no votes left");
  outcome.txn_id = 77;
  outcome.output = {{Value::BigInt(1)}};
  EncodeResult(&w, 5, outcome);
  EncodeBusy(&w, 6);

  WireFrameBuffer frames;
  frames.Feed(w.data().data(), w.size());
  const uint8_t* payload;
  size_t len;
  auto has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok() && *has);
  WireResponse resp;
  ASSERT_TRUE(DecodeResponse(payload, len, &resp).ok());
  EXPECT_EQ(resp.type, WireResponseType::kResult);
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_TRUE(resp.status.IsAborted());
  EXPECT_EQ(resp.status.message(), "no votes left");
  EXPECT_EQ(resp.txn_id, 77);
  ASSERT_EQ(resp.output.size(), 1u);

  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok() && *has);
  ASSERT_TRUE(DecodeResponse(payload, len, &resp).ok());
  EXPECT_EQ(resp.type, WireResponseType::kBusy);
  EXPECT_EQ(resp.request_id, 6u);
}

TEST(WireProtocolTest, OversizedFrameIsCorruption) {
  WireFrameBuffer frames;
  uint32_t huge = kWireMaxFrameBytes + 1;
  frames.Feed(reinterpret_cast<const uint8_t*>(&huge), sizeof(huge));
  const uint8_t* payload;
  size_t len;
  auto has = frames.Next(&payload, &len);
  EXPECT_FALSE(has.ok());
}

// ---- Adversarial framing input ----

TEST(WireProtocolTest, OneByteFeedsNeverYieldPartialFrame) {
  // Next after EVERY byte: incomplete must always be a clean false (never an
  // error, never a short frame), and the frame must pop exactly once — on
  // the byte that completes it, not before.
  ByteWriter w;
  EncodeBusy(&w, 1234);
  WireFrameBuffer frames;
  const uint8_t* payload;
  size_t len;
  const std::vector<uint8_t>& bytes = w.data();
  for (size_t i = 0; i < bytes.size(); ++i) {
    frames.Feed(&bytes[i], 1);
    auto has = frames.Next(&payload, &len);
    ASSERT_TRUE(has.ok()) << "byte " << i;
    if (i + 1 < bytes.size()) {
      EXPECT_FALSE(*has) << "frame popped early at byte " << i;
    } else {
      ASSERT_TRUE(*has);
      WireResponse resp;
      ASSERT_TRUE(DecodeResponse(payload, len, &resp).ok());
      EXPECT_EQ(resp.type, WireResponseType::kBusy);
      EXPECT_EQ(resp.request_id, 1234u);
    }
  }
}

TEST(WireProtocolTest, TruncatedHeaderStraddlingFeedsReassembles) {
  // The 4-byte length prefix itself arrives split across reads; each
  // fragment alone must report "incomplete", not garbage.
  uint32_t frame_len = 5;
  uint8_t header[sizeof(uint32_t)];
  std::memcpy(header, &frame_len, sizeof(frame_len));
  const uint8_t body[5] = {0xde, 0xad, 0xbe, 0xef, 0x42};

  WireFrameBuffer frames;
  const uint8_t* payload;
  size_t len;
  frames.Feed(header, 2);  // half a header
  auto has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  frames.Feed(header + 2, 2);  // header complete, no payload yet
  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  frames.Feed(body, 3);  // partial payload
  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  frames.Feed(body + 3, 2);  // done
  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  ASSERT_EQ(len, 5u);
  EXPECT_EQ(std::memcmp(payload, body, 5), 0);
}

TEST(WireProtocolTest, MaxLengthBoundaryFrameIsAccepted) {
  // Exactly at the 16MiB cap: accepted whole. One past it is Corruption
  // (covered above) — the boundary itself must not be off by one.
  WireFrameBuffer frames;
  uint32_t frame_len = kWireMaxFrameBytes;
  frames.Feed(reinterpret_cast<const uint8_t*>(&frame_len),
              sizeof(frame_len));
  std::vector<uint8_t> body(kWireMaxFrameBytes, 0xab);
  // Feed in two halves so completion straddles a read boundary too.
  frames.Feed(body.data(), body.size() / 2);
  const uint8_t* payload;
  size_t len;
  auto has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  frames.Feed(body.data() + body.size() / 2, body.size() - body.size() / 2);
  has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(len, static_cast<size_t>(kWireMaxFrameBytes));
  EXPECT_EQ(payload[0], 0xab);
  EXPECT_EQ(payload[len - 1], 0xab);
}

TEST(WireProtocolTest, GarbageAfterValidFrameDoesNotPoisonTheValidOne) {
  // A well-formed frame followed by a hostile header: the good frame must
  // still decode; only the NEXT pop reports corruption.
  ByteWriter w;
  EncodeBusy(&w, 7);
  WireFrameBuffer frames;
  frames.Feed(w.data().data(), w.size());
  uint32_t huge = kWireMaxFrameBytes + 99;
  frames.Feed(reinterpret_cast<const uint8_t*>(&huge), sizeof(huge));

  const uint8_t* payload;
  size_t len;
  auto has = frames.Next(&payload, &len);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  WireResponse resp;
  ASSERT_TRUE(DecodeResponse(payload, len, &resp).ok());
  EXPECT_EQ(resp.request_id, 7u);

  has = frames.Next(&payload, &len);
  EXPECT_FALSE(has.ok());  // the garbage, isolated to its own frame slot
}

// ---- Basic serving ----

TEST(WireServerTest, StartStopIdempotent) {
  Harness h(2);
  EXPECT_TRUE(h.server.running());
  EXPECT_NE(h.server.port(), 0);
  h.server.Stop();
  EXPECT_FALSE(h.server.running());
  h.server.Stop();  // second stop is a no-op
}

TEST(WireServerTest, SingleVoteRoundTrip) {
  Harness h(2);
  auto client = h.Connect();
  WireResult r = client->Call("vc_vote", {Value::BigInt(3)}, Value::BigInt(3));
  ASSERT_TRUE(r.transport.ok()) << r.transport.ToString();
  EXPECT_FALSE(r.busy);
  EXPECT_TRUE(r.committed());
  EXPECT_GT(r.outcome.txn_id, 0);

  client->Close();
  h.server.Stop();
  h.cluster.WaitIdle();
  auto count = h.app.Count(3);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, h.config.initial_votes + 1);
}

TEST(WireServerTest, PingPong) {
  Harness h(1);
  auto client = h.Connect();
  EXPECT_TRUE(client->Ping().ok());
}

TEST(WireServerTest, AbortOutcomeTravelsBack) {
  Harness h(2);
  auto client = h.Connect();
  // vc_adjust with a delta that would drive the balance negative aborts.
  WireResult r = client->Call(
      "vc_adjust", {Value::BigInt(4), Value::BigInt(-1000000)},
      Value::BigInt(4));
  ASSERT_TRUE(r.transport.ok());
  EXPECT_FALSE(r.busy);
  EXPECT_FALSE(r.committed());
  EXPECT_TRUE(r.outcome.status.IsAborted());
  EXPECT_FALSE(r.outcome.status.message().empty());
}

TEST(WireServerTest, UnknownProcedureIsTxnFailureNotProtocolError) {
  Harness h(1);
  auto client = h.Connect();
  WireResult r = client->Call("no_such_proc", {Value::BigInt(1)},
                              Value::BigInt(1));
  ASSERT_TRUE(r.transport.ok());
  EXPECT_FALSE(r.committed());
  EXPECT_EQ(h.server.stats().protocol_errors, 0u);
}

// ---- Pipelining & batching ----

TEST(WireServerTest, PipelinedBatchAllAnswered) {
  constexpr int kVotes = 800;
  Harness h(2);
  auto client = h.Connect();
  std::vector<WireFuturePtr> futures;
  futures.reserve(kVotes);
  for (int i = 0; i < kVotes; ++i) {
    int64_t c = i % h.config.num_contestants;
    futures.push_back(
        client->SubmitAsync("vc_vote", {Value::BigInt(c)}, Value::BigInt(c)));
  }
  ASSERT_TRUE(client->Flush().ok());
  int committed = 0;
  for (auto& f : futures) {
    const WireResult& r = f->Wait();
    ASSERT_TRUE(r.transport.ok());
    ASSERT_FALSE(r.busy);  // default cap (1024) admits everything
    if (r.committed()) ++committed;
  }
  EXPECT_EQ(committed, kVotes);
  EXPECT_EQ(client->unmatched_responses(), 0u);

  // The whole pipeline went out as a handful of coalesced per-partition
  // batches, not one ring enqueue per request.
  WireServer::Stats ss = h.server.stats();
  EXPECT_EQ(ss.requests_submitted, static_cast<uint64_t>(kVotes));
  EXPECT_LT(ss.batches_submitted, static_cast<uint64_t>(kVotes) / 2);

  client->Close();
  h.server.Stop();
  h.cluster.WaitIdle();
  EXPECT_TRUE(h.app.CheckInvariant().ok());
  auto txns = h.app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, kVotes);
}

TEST(WireServerTest, ResultsMatchInProcessExecution) {
  Harness h(2);
  auto client = h.Connect();
  // Same vote through the wire and in-process: identical state transitions.
  ASSERT_TRUE(
      client->Call("vc_vote", {Value::BigInt(5)}, Value::BigInt(5)).committed());
  TxnOutcome direct =
      h.cluster.ExecuteSync("vc_vote", {Value::BigInt(5)}, Value::BigInt(5));
  ASSERT_TRUE(direct.committed());
  client->Close();
  h.server.Stop();
  h.cluster.WaitIdle();
  auto count = h.app.Count(5);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, h.config.initial_votes + 2);
}

// ---- Admission control ----

TEST(WireServerTest, BusyShedAtInflightCap) {
  WireServer::Options sopts;
  sopts.max_inflight_per_conn = 8;
  Harness h(1, sopts);
  // Slow the partition so in-flight frames pile up: a closure that sleeps
  // ahead of the pipelined votes.
  h.cluster.partition(0).SubmitClosure([](Partition&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });

  auto client = h.Connect();
  constexpr int kBurst = 64;
  std::vector<WireFuturePtr> futures;
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(
        client->SubmitAsync("vc_vote", {Value::BigInt(1)}, Value::BigInt(1)));
  }
  ASSERT_TRUE(client->Flush().ok());
  int committed = 0, busy = 0;
  for (auto& f : futures) {
    const WireResult& r = f->Wait();
    ASSERT_TRUE(r.transport.ok());
    if (r.busy) {
      ++busy;
    } else if (r.committed()) {
      ++committed;
    }
  }
  // Every frame was answered exactly once: either executed or shed.
  EXPECT_EQ(committed + busy, kBurst);
  EXPECT_GT(busy, 0);
  WireServer::Stats ss = h.server.stats();
  EXPECT_EQ(ss.busy_shed, static_cast<uint64_t>(busy));
  // The bound held: never more than the cap submitted-but-unanswered.
  EXPECT_LE(ss.max_conn_inflight, 8u);

  client->Close();
  h.server.Stop();
  h.cluster.WaitIdle();
  auto txns = h.app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, committed);
}

TEST(WireServerTest, ShedsWhenPartitionRingSaturated) {
  Cluster::Options copts = ClusterOpts(1);
  copts.queue_capacity = 16;  // tiny ring: saturation is easy to hit
  WireServer::Options sopts;
  sopts.max_inflight_per_conn = 4096;  // per-conn cap out of the way
  Harness h(1, sopts, copts);
  h.cluster.partition(0).SubmitClosure([](Partition&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });

  auto client = h.Connect();
  constexpr int kBurst = 256;
  std::vector<WireFuturePtr> futures;
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(
        client->SubmitAsync("vc_vote", {Value::BigInt(1)}, Value::BigInt(1)));
  }
  ASSERT_TRUE(client->Flush().ok());
  int committed = 0, busy = 0;
  for (auto& f : futures) {
    const WireResult& r = f->Wait();
    ASSERT_TRUE(r.transport.ok());
    if (r.busy) {
      ++busy;
    } else if (r.committed()) {
      ++committed;
    }
  }
  EXPECT_EQ(committed + busy, kBurst);
  // The ring held 16; the rest of the burst had to shed (the loop never
  // blocks and never buffers unbounded).
  EXPECT_GT(busy, 0);

  client->Close();
  h.server.Stop();
  h.cluster.WaitIdle();
  auto txns = h.app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, committed);
}

// ---- Multi-connection load ----

TEST(WireServerTest, MultiConnectionTotalsAddUp) {
  constexpr int kConns = 4;
  constexpr int kVotesPerConn = 400;
  WireServer::Options sopts;
  sopts.num_io_threads = 2;
  Harness h(2, sopts);

  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&h, &committed, t] {
      auto client = h.Connect();
      std::vector<WireFuturePtr> futures;
      for (int i = 0; i < kVotesPerConn; ++i) {
        int64_t c = (t * 7 + i) % h.config.num_contestants;
        futures.push_back(client->SubmitAsync("vc_vote", {Value::BigInt(c)},
                                              Value::BigInt(c)));
        if (futures.size() % 64 == 0) client->Flush();
      }
      client->Flush();
      for (auto& f : futures) {
        const WireResult& r = f->Wait();
        ASSERT_TRUE(r.transport.ok());
        ASSERT_FALSE(r.busy);
        if (r.committed()) committed.fetch_add(1);
      }
      EXPECT_EQ(client->unmatched_responses(), 0u);
      client->Close();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(committed.load(), kConns * kVotesPerConn);

  h.server.Stop();
  h.cluster.WaitIdle();
  EXPECT_TRUE(h.app.CheckInvariant().ok());
  auto txns = h.app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, kConns * kVotesPerConn);
}

// ---- Drain-and-stop under load ----

TEST(WireServerTest, DrainStopLosesNoResponses) {
  constexpr int kConns = 3;
  Harness h(2);

  // Clients hammer votes until their connection dies; every future must
  // resolve exactly once — a commit response, a busy, or a transport error
  // (connection closed, vote not accepted). Zero unmatched (duplicate)
  // responses allowed.
  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> closed{0};
  std::atomic<bool> go{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&h, &committed, &closed, &go, t] {
      auto client = h.Connect();
      std::vector<WireFuturePtr> futures;
      int64_t i = 0;
      while (go.load(std::memory_order_relaxed)) {
        int64_t c = (t + i++) % h.config.num_contestants;
        futures.push_back(client->SubmitAsync("vc_vote", {Value::BigInt(c)},
                                              Value::BigInt(c)));
        if (futures.size() % 32 == 0) {
          if (!client->Flush().ok()) break;
        }
      }
      client->Flush();
      for (auto& f : futures) {
        const WireResult& r = f->Wait();
        if (!r.transport.ok()) {
          closed.fetch_add(1);
        } else if (r.committed()) {
          committed.fetch_add(1);
        }
      }
      EXPECT_EQ(client->unmatched_responses(), 0u);
      client->Close();
    });
  }

  // Let load build, then stop the server mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  h.server.Stop();
  go.store(false);
  for (auto& t : threads) t.join();

  h.cluster.WaitIdle();
  EXPECT_TRUE(h.app.CheckInvariant().ok());
  // Zero lost/duplicated: the votes the clients saw commit are exactly the
  // votes the database holds.
  auto txns = h.app.TotalVoteTxns();
  ASSERT_TRUE(txns.ok());
  EXPECT_EQ(*txns, committed.load());
  EXPECT_GT(committed.load(), 0);
}

// Regression: a peer that resets its connection with frames in flight gets
// its Connection torn down immediately, so the loop can report drained — and
// be destroyed by Stop() — while the partition worker still holds the batch
// ticket. The late completion must be dropped safely (weak mailbox), not
// delivered into a destroyed loop's mutex/eventfd.
TEST(WireServerTest, AbruptPeerResetWithInflightThenStopIsSafe) {
  Harness h(1);
  // Hold the partition busy so the submitted votes stay in flight past the
  // peer's reset and the server's Stop().
  h.cluster.partition(0).SubmitClosure([](Partition&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  ByteWriter w;
  for (uint64_t id = 1; id <= 8; ++id) {
    Value key = Value::BigInt(1);
    EncodeSubmit(&w, id, "vc_vote", {Value::BigInt(1)}, &key, 0);
  }
  const std::vector<uint8_t>& buf = w.data();
  ASSERT_EQ(::send(fd, buf.data(), buf.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(buf.size()));

  // Give the loop a moment to read + submit, then RST away (SO_LINGER 0):
  // the server closes the connection with inflight > 0.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  linger lin{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  ::close(fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Stop() sees an empty, drained loop and destroys it; the ticket is still
  // ~100ms from completing on the partition worker.
  h.server.Stop();
  WireServer::Stats ss = h.server.stats();
  EXPECT_GT(ss.requests_submitted, 0u);

  // The late completion fires during this wait — dropped, not crashed.
  h.cluster.WaitIdle();
  EXPECT_TRUE(h.app.CheckInvariant().ok());
}

// ---- Protocol robustness ----

TEST(WireServerTest, GarbageFrameClosesConnection) {
  Harness h(1);
  auto client = h.Connect();
  // A live client first (proves the server survives the bad peer)...
  ASSERT_TRUE(client->Ping().ok());

  // ...then a raw socket speaking garbage: an oversized length prefix is
  // unrecoverable framing corruption.
  ByteWriter garbage;
  garbage.PutU32(kWireMaxFrameBytes + 17);
  garbage.PutU64(0xdeadbeef);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_GT(::send(fd, garbage.data().data(), garbage.size(), MSG_NOSIGNAL),
            0);
  // The server answers kError and closes: read until EOF.
  uint8_t buf[256];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);

  // The well-behaved connection still works.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(h.server.stats().protocol_errors, 1u);
}

// ---- Durability: group commit through the wire ----

TEST(WireServerTest, GroupCommitBatchesFlushes) {
  constexpr int kVotes = 256;
  auto run = [&](size_t group_size) -> LogStats {
    Cluster::Options copts = ClusterOpts(1);
    copts.log_dir = MakeDir("gc_" + std::to_string(group_size));
    copts.group_commit_size = group_size;
    copts.log_sync = false;  // flush-count semantics, not fsync latency
    WireServer::Options sopts;
    Harness h(1, sopts, copts);
    auto client = h.Connect();
    std::vector<WireFuturePtr> futures;
    for (int i = 0; i < kVotes; ++i) {
      int64_t c = i % h.config.num_contestants;
      futures.push_back(client->SubmitAsync("vc_vote", {Value::BigInt(c)},
                                            Value::BigInt(c)));
    }
    client->Flush();
    for (auto& f : futures) EXPECT_TRUE(f->Wait().committed());
    client->Close();
    h.server.Stop();
    h.cluster.WaitIdle();
    ClusterStats stats = h.cluster.GatherStats();
    EXPECT_EQ(stats.log.records_appended, static_cast<uint64_t>(kVotes));
    return stats.log;
  };

  LogStats per_record = run(1);
  LogStats grouped = run(64);
  // group_size 1: one flush per record. group_size 64: the worker commits
  // whole wire batches between flush boundaries, so flushes collapse by
  // orders of magnitude — the §4.4 knob, now observable cluster-wide.
  EXPECT_GE(per_record.flush_count, static_cast<uint64_t>(kVotes));
  EXPECT_LT(grouped.flush_count, per_record.flush_count / 8);
}

}  // namespace
}  // namespace sstore
