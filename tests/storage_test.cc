#include <gtest/gtest.h>

#include "common/bytes.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace sstore {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", ValueType::kBigInt}, {"name", ValueType::kString}});
}

Tuple Row(int64_t id, const std::string& name) {
  return {Value::BigInt(id), Value::String(name)};
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.ColumnIndex("id"), 0u);
  EXPECT_EQ(*s.ColumnIndex("name"), 1u);
  EXPECT_TRUE(s.ColumnIndex("missing").status().IsNotFound());
}

TEST(SchemaTest, ValidateTupleArity) {
  Schema s = TwoColSchema();
  EXPECT_TRUE(s.ValidateTuple(Row(1, "a")).ok());
  EXPECT_FALSE(s.ValidateTuple({Value::BigInt(1)}).ok());
}

TEST(SchemaTest, ValidateTupleTypes) {
  Schema s = TwoColSchema();
  EXPECT_FALSE(s.ValidateTuple({Value::String("x"), Value::String("a")}).ok());
  // NULLs pass; BIGINT/TIMESTAMP interchange.
  EXPECT_TRUE(s.ValidateTuple({Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(s.ValidateTuple({Value::Timestamp(1), Value::String("a")}).ok());
}

TEST(SchemaTest, SerializeRoundTrip) {
  Schema s = TwoColSchema();
  ByteWriter w;
  s.SerializeTo(&w);
  ByteReader r(w.data());
  Result<Schema> got = Schema::DeserializeFrom(&r);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->Equals(s));
}

TEST(TableTest, InsertGetDelete) {
  Table t("t", TwoColSchema());
  Result<RowId> rid = t.Insert(Row(1, "a"));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(t.row_count(), 1u);
  Result<const Tuple*> got = t.Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((**got)[1], Value::String("a"));
  Result<Tuple> removed = t.Delete(*rid);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ((*removed)[0], Value::BigInt(1));
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_TRUE(t.Get(*rid).status().IsNotFound());
}

TEST(TableTest, SlotReuseAfterDelete) {
  Table t("t", TwoColSchema());
  RowId a = *t.Insert(Row(1, "a"));
  ASSERT_TRUE(t.Delete(a).ok());
  RowId b = *t.Insert(Row(2, "b"));
  EXPECT_EQ(a, b);  // free-list reuse
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, SchemaRejectionOnInsert) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.Insert({Value::String("bad"), Value::String("a")}).ok());
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, UpdateReturnsBeforeImage) {
  Table t("t", TwoColSchema());
  RowId rid = *t.Insert(Row(1, "a"));
  Result<Tuple> before = t.Update(rid, Row(1, "b"));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)[1], Value::String("a"));
  EXPECT_EQ((**t.Get(rid))[1], Value::String("b"));
}

TEST(TableTest, SequenceMonotone) {
  Table t("t", TwoColSchema());
  RowId a = *t.Insert(Row(1, "a"));
  RowId b = *t.Insert(Row(2, "b"));
  EXPECT_LT((*t.GetMeta(a))->seq, (*t.GetMeta(b))->seq);
}

TEST(TableTest, StagingCounts) {
  Table t("w", TwoColSchema(), TableKind::kWindow);
  RowMeta staged;
  staged.active = false;
  ASSERT_TRUE(t.Insert(Row(1, "a"), staged).ok());
  RowId active = *t.Insert(Row(2, "b"));
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.active_count(), 1u);
  EXPECT_EQ(t.staged_count(), 1u);
  // Flip staged -> active.
  std::vector<RowId> all = t.RowIdsBySeq(/*include_staged=*/true);
  ASSERT_EQ(all.size(), 2u);
  ASSERT_TRUE(t.SetActive(all[0], true).ok());
  EXPECT_EQ(t.active_count(), 2u);
  (void)active;
}

TEST(TableTest, ForEachSkipsStagedByDefault) {
  Table t("w", TwoColSchema(), TableKind::kWindow);
  RowMeta staged;
  staged.active = false;
  ASSERT_TRUE(t.Insert(Row(1, "a"), staged).ok());
  ASSERT_TRUE(t.Insert(Row(2, "b")).ok());
  int visible = 0, total = 0;
  t.ForEach([&](RowId, const Tuple&, const RowMeta&) {
    ++visible;
    return true;
  });
  t.ForEach(
      [&](RowId, const Tuple&, const RowMeta&) {
        ++total;
        return true;
      },
      /*include_staged=*/true);
  EXPECT_EQ(visible, 1);
  EXPECT_EQ(total, 2);
}

TEST(TableTest, UniqueIndexRejectsDuplicates) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, /*unique=*/true).ok());
  ASSERT_TRUE(t.Insert(Row(1, "a")).ok());
  Result<RowId> dup = t.Insert(Row(1, "b"));
  EXPECT_TRUE(dup.status().IsConstraintViolation());
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, UniqueIndexAllowsReinsertAfterDelete) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, true).ok());
  RowId rid = *t.Insert(Row(1, "a"));
  ASSERT_TRUE(t.Delete(rid).ok());
  EXPECT_TRUE(t.Insert(Row(1, "b")).ok());
}

TEST(TableTest, NonUniqueIndexLookup) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("by_name", {"name"}, false).ok());
  ASSERT_TRUE(t.Insert(Row(1, "x")).ok());
  ASSERT_TRUE(t.Insert(Row(2, "x")).ok());
  ASSERT_TRUE(t.Insert(Row(3, "y")).ok());
  Result<std::vector<RowId>> hits =
      t.IndexLookup("by_name", {Value::String("x")});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST(TableTest, IndexMaintainedOnUpdate) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("by_name", {"name"}, false).ok());
  RowId rid = *t.Insert(Row(1, "x"));
  ASSERT_TRUE(t.Update(rid, Row(1, "y")).ok());
  EXPECT_TRUE((*t.IndexLookup("by_name", {Value::String("x")})).empty());
  EXPECT_EQ((*t.IndexLookup("by_name", {Value::String("y")})).size(), 1u);
}

TEST(TableTest, UniqueUpdateConflict) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, true).ok());
  ASSERT_TRUE(t.Insert(Row(1, "a")).ok());
  RowId rid = *t.Insert(Row(2, "b"));
  EXPECT_TRUE(t.Update(rid, Row(1, "b")).status().IsConstraintViolation());
  // Same-key update is fine.
  EXPECT_TRUE(t.Update(rid, Row(2, "c")).ok());
}

TEST(TableTest, BackfillIndexOnExistingData) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Insert(Row(1, "a")).ok());
  ASSERT_TRUE(t.Insert(Row(2, "b")).ok());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, true).ok());
  EXPECT_EQ((*t.IndexLookup("pk", {Value::BigInt(2)})).size(), 1u);
}

TEST(TableTest, BackfillUniqueViolationFailsCreation) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Insert(Row(1, "a")).ok());
  ASSERT_TRUE(t.Insert(Row(1, "b")).ok());
  EXPECT_TRUE(t.CreateIndex("pk", {"id"}, true).IsConstraintViolation());
  EXPECT_TRUE(t.GetIndex("pk").status().IsNotFound());
}

TEST(TableTest, DuplicateIndexNameRejected) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("i", {"id"}, false).ok());
  EXPECT_EQ(t.CreateIndex("i", {"name"}, false).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, IndexOnUnknownColumnRejected) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.CreateIndex("i", {"nope"}, false).IsNotFound());
}

TEST(TableTest, UndoDeleteRestoresSlotAndIndexes) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, true).ok());
  RowId rid = *t.Insert(Row(1, "a"));
  RowMeta meta = *(*t.GetMeta(rid));
  Tuple before = *t.Delete(rid);
  ASSERT_TRUE(t.UndoDeleteAt(rid, before, meta).ok());
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ((*t.IndexLookup("pk", {Value::BigInt(1)})).size(), 1u);
  EXPECT_EQ((*t.GetMeta(rid))->seq, meta.seq);
}

TEST(TableTest, SerializeRoundTripPreservesMetaAndOrder) {
  Table t("s", TwoColSchema(), TableKind::kStream);
  RowMeta m1;
  m1.batch_id = 7;
  ASSERT_TRUE(t.Insert(Row(1, "a"), m1).ok());
  RowMeta m2;
  m2.batch_id = 8;
  m2.active = false;
  ASSERT_TRUE(t.Insert(Row(2, "b"), m2).ok());

  ByteWriter w;
  t.SerializeTo(&w);

  Table t2("s", TwoColSchema(), TableKind::kStream);
  ByteReader r(w.data());
  ASSERT_TRUE(t2.DeserializeContentsFrom(&r).ok());
  EXPECT_EQ(t2.row_count(), 2u);
  EXPECT_EQ(t2.active_count(), 1u);
  EXPECT_EQ(t2.next_seq(), t.next_seq());
  std::vector<RowId> ids = t2.RowIdsBySeq(true);
  EXPECT_EQ((*t2.GetMeta(ids[0]))->batch_id, 7);
  EXPECT_EQ((*t2.GetMeta(ids[1]))->batch_id, 8);
}

TEST(TableTest, DeserializeSchemaMismatchIsCorruption) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Insert(Row(1, "a")).ok());
  ByteWriter w;
  t.SerializeTo(&w);
  Table other("t", Schema({{"x", ValueType::kDouble}}));
  ByteReader r(w.data());
  EXPECT_EQ(other.DeserializeContentsFrom(&r).code(), StatusCode::kCorruption);
}

TEST(TableTest, ClearResetsEverything) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {"id"}, true).ok());
  ASSERT_TRUE(t.Insert(Row(1, "a")).ok());
  EXPECT_EQ(t.Clear(), 1u);
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_TRUE(t.Insert(Row(1, "b")).ok());  // index cleared too
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("t", TwoColSchema()).ok());
  EXPECT_TRUE(c.HasTable("t"));
  EXPECT_EQ(c.CreateTable("t", TwoColSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(c.GetTable("t").ok());
  ASSERT_TRUE(c.DropTable("t").ok());
  EXPECT_FALSE(c.HasTable("t"));
  EXPECT_TRUE(c.DropTable("t").IsNotFound());
}

TEST(CatalogTest, TablesOfKindSorted) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("b_stream", TwoColSchema(), TableKind::kStream).ok());
  ASSERT_TRUE(c.CreateTable("a_stream", TwoColSchema(), TableKind::kStream).ok());
  ASSERT_TRUE(c.CreateTable("base", TwoColSchema()).ok());
  std::vector<Table*> streams = c.TablesOfKind(TableKind::kStream);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0]->name(), "a_stream");
  EXPECT_EQ(c.TableNames().size(), 3u);
}

}  // namespace
}  // namespace sstore
