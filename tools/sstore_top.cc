// sstore_top — top(1) for a running S-Store: polls a WireServer's kStats
// endpoint and renders per-partition throughput, ring depth, group-commit
// ratio, and txn latency quantiles as a refreshing one-screen report.
//
//   ./sstore_top --connect 127.0.0.1:7777                # refresh every 1s
//   ./sstore_top --connect 127.0.0.1:7777 --interval-ms 250
//   ./sstore_top --connect 127.0.0.1:7777 --once         # one snapshot, exit
//   ./sstore_top --connect 127.0.0.1:7777 --raw          # raw exposition
//
// Rates (tx/s) are deltas between consecutive polls; the first frame (and
// --once) shows totals only. Exits non-zero if the connection cannot be
// established or a poll fails — which makes `--once` a usable health probe.

#include <cinttypes>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/client.h"

namespace {

using sstore::LabeledMetric;
using sstore::ParseMetricsText;
using sstore::WireClient;

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int interval_ms = 1000;
  bool once = false;
  bool raw = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--connect") {
      std::string hp = next("--connect");
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect expects host:port\n");
        return false;
      }
      args->host = hp.substr(0, colon);
      args->port = static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (a == "--interval-ms") {
      args->interval_ms = std::atoi(next("--interval-ms"));
    } else if (a == "--once") {
      args->once = true;
    } else if (a == "--raw") {
      args->raw = true;
    } else {
      std::fprintf(stderr,
                   "usage: sstore_top --connect host:port [--interval-ms N] "
                   "[--once] [--raw]\n");
      return false;
    }
  }
  if (args->port == 0) {
    std::fprintf(stderr, "sstore_top: --connect host:port is required\n");
    return false;
  }
  if (args->interval_ms < 1) args->interval_ms = 1;
  return true;
}

using MetricMap = std::map<std::string, double>;

double Get(const MetricMap& m, const std::string& name, double fallback = 0) {
  auto it = m.find(name);
  return it == m.end() ? fallback : it->second;
}

bool Has(const MetricMap& m, const std::string& name) {
  return m.find(name) != m.end();
}

/// tx/s between two polls; "-" when there is no previous frame.
std::string Rate(double now, double prev, double secs, bool have_prev) {
  char buf[32];
  if (!have_prev || secs <= 0) return "-";
  std::snprintf(buf, sizeof(buf), "%.0f", (now - prev) / secs);
  return buf;
}

void Render(const MetricMap& m, const MetricMap& prev, bool have_prev,
            double secs) {
  const int partitions = static_cast<int>(Get(m, "sstore_partitions"));
  const double committed = Get(m, "sstore_txn_committed_total");
  const double committed_prev = Get(prev, "sstore_txn_committed_total");

  std::printf("sstore_top  %d partition%s  interval %.1fs\n", partitions,
              partitions == 1 ? "" : "s", secs);
  std::printf(
      "  txn: %.0f committed (%s tx/s)  %.0f aborted  queue depth %.0f "
      "(hwm %.0f)\n",
      committed, Rate(committed, committed_prev, secs, have_prev).c_str(),
      Get(m, "sstore_txn_aborted_total"), Get(m, "sstore_queue_depth"),
      Get(m, "sstore_queue_high_watermark"));
  std::printf(
      "  latency us (sampled): p50 %.0f  p99 %.0f  max %.0f  (n=%.0f)\n",
      Get(m, "sstore_txn_latency_us{quantile=\"0.5\"}"),
      Get(m, "sstore_txn_latency_us{quantile=\"0.99\"}"),
      Get(m, "sstore_txn_latency_us{quantile=\"1\"}"),
      Get(m, "sstore_txn_latency_us_count"));
  std::printf(
      "  log: group-commit x%.1f  %.0f flushes  |  wire: busy-shed %.0f  "
      "proto-errs %.0f\n",
      Get(m, "sstore_log_group_commit_ratio"),
      Get(m, "sstore_log_flushes_total"),
      Get(m, "sstore_wire_busy_shed_total"),
      Get(m, "sstore_wire_protocol_errors_total"));
  std::printf(
      "  checkpoint: %.0f completed  last pause %.0f us  max pause %.0f us\n",
      Get(m, "sstore_checkpoint_completed_total"),
      Get(m, "sstore_checkpoint_last_barrier_pause_us"),
      Get(m, "sstore_checkpoint_max_barrier_pause_us"));

  std::printf("  %5s %10s %12s %9s %7s %6s %12s\n", "part", "tx/s",
              "committed", "aborted", "qdepth", "hwm", "log-records");
  for (int p = 0;; ++p) {
    const std::string label = std::to_string(p);
    const std::string committed_name =
        LabeledMetric("sstore_partition_committed_total", "partition", label);
    if (!Has(m, committed_name)) break;
    const double c = Get(m, committed_name);
    const double c_prev = Get(prev, committed_name);
    std::printf(
        "  %5d %10s %12.0f %9.0f %7.0f %6.0f %12.0f\n", p,
        Rate(c, c_prev, secs, have_prev).c_str(), c,
        Get(m, LabeledMetric("sstore_partition_aborted_total", "partition",
                             label)),
        Get(m,
            LabeledMetric("sstore_partition_queue_depth", "partition", label)),
        Get(m, LabeledMetric("sstore_partition_queue_high_watermark",
                             "partition", label)),
        Get(m, LabeledMetric("sstore_partition_log_records_total", "partition",
                             label)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  auto client_or = WireClient::Connect({args.host, args.port, 0});
  if (!client_or.ok()) {
    std::fprintf(stderr, "sstore_top: connect to %s:%u failed: %s\n",
                 args.host.c_str(), args.port,
                 client_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<WireClient> client = std::move(*client_or);

  MetricMap prev;
  bool have_prev = false;
  int consecutive_shed = 0;
  constexpr int kMaxConsecutiveShed = 5;
  auto last_poll = std::chrono::steady_clock::now();
  for (;;) {
    auto text_or = client->FetchStats();
    if (!text_or.ok()) {
      // Unavailable = the server shed the poll with kBusy (checkpoint or
      // rebalance barrier) even after the client's own retries. That is a
      // healthy server under a long pause, not a dead one — keep the screen
      // up and poll again, unless it persists long enough to look wedged.
      // --once stays strict so it remains a usable health probe.
      if (text_or.status().IsUnavailable() && !args.once &&
          ++consecutive_shed < kMaxConsecutiveShed) {
        std::fprintf(stderr, "sstore_top: stats poll shed busy (%d/%d): %s\n",
                     consecutive_shed, kMaxConsecutiveShed,
                     text_or.status().ToString().c_str());
        std::this_thread::sleep_for(
            std::chrono::milliseconds(args.interval_ms));
        continue;
      }
      std::fprintf(stderr, "sstore_top: stats fetch failed: %s\n",
                   text_or.status().ToString().c_str());
      return 1;
    }
    consecutive_shed = 0;
    auto now = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(now - last_poll).count();
    last_poll = now;

    if (args.raw) {
      std::fputs(text_or->c_str(), stdout);
    } else {
      MetricMap m;
      for (auto& [name, value] : ParseMetricsText(*text_or)) m[name] = value;
      if (m.empty()) {
        std::fprintf(stderr, "sstore_top: empty/unparseable exposition\n");
        return 1;
      }
      Render(m, prev, have_prev, secs);
      prev = std::move(m);
      have_prev = true;
    }
    if (args.once) return 0;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
  }
}
