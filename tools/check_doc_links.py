#!/usr/bin/env python3
"""Checks that every relative markdown link in the given files resolves.

Usage: tools/check_doc_links.py README.md docs/*.md

For each `[text](target)` link whose target is not an absolute URL:
  - the file part must exist relative to the linking file;
  - a `#fragment` (on another file or standalone) must match a heading in
    the target file, using GitHub's anchor-slug rules (lowercase, spaces to
    dashes, punctuation dropped).

Exits non-zero listing every broken link, so CI fails when docs rot.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def anchors_of(path):
    anchors = set()
    with open(path, encoding="utf-8") as f:
        in_code = False
        for line in f:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            text = m.group(1).strip()
            # Strip inline markdown (code spans, links, emphasis).
            text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
            text = text.replace("`", "")
            slug = text.lower()
            slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
            slug = slug.replace(" ", "-")
            anchors.add(slug)
    return anchors


def check_file(path):
    errors = []
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        in_code = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                    continue
                file_part, _, fragment = target.partition("#")
                dest = path if not file_part else os.path.normpath(
                    os.path.join(base, file_part))
                if not os.path.exists(dest):
                    errors.append(f"{path}:{lineno}: broken link '{target}' "
                                  f"(no such file: {dest})")
                    continue
                if fragment and dest.endswith(".md"):
                    if fragment not in anchors_of(dest):
                        errors.append(f"{path}:{lineno}: broken anchor "
                                      f"'{target}' (no heading "
                                      f"'#{fragment}' in {dest})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for path in argv[1:]:
        if not os.path.exists(path):
            errors.append(f"{path}: file to check does not exist")
            continue
        errors.extend(check_file(path))
    for e in errors:
        print(e)
    if errors:
        print(f"{len(errors)} broken link(s)")
        return 1
    print(f"checked {len(argv) - 1} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
